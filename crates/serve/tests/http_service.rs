//! End-to-end HTTP service tests: boot on an ephemeral port, ingest over
//! the wire, poll verdicts, saturate the queue to see 429s, validate
//! `/metrics`, drain gracefully, and recover across a restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use corroborate_obs::Json;
use corroborate_serve::{start, EpochConfig, ServerConfig, WalConfig};

/// A minimal blocking HTTP/1.1 client for one request; returns the raw
/// body and the response's `Content-Type`.
fn request_raw(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    let mut content_type = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
        if let Some(v) = lower.strip_prefix("content-type:") {
            content_type = v.trim().to_string();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap(), content_type)
}

/// [`request_raw`] with the body parsed as JSON.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, body, _) = request_raw(addr, method, path, body);
    (status, Json::parse(&body).unwrap())
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corroborate-http-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(500),
        epoch_linger: Duration::from_millis(5),
        ..Default::default()
    }
}

#[test]
fn ingest_then_query_roundtrip() {
    let handle = start(test_config()).unwrap();
    let addr = handle.addr();

    let (status, body) = request(
        addr,
        "POST",
        "/v1/votes",
        r#"{"votes":[{"source":"alice","fact":"sky is blue","vote":"T"},
                    {"source":"bob","fact":"sky is blue","vote":"T"},
                    {"source":"mallory","fact":"sky is blue","vote":"F"}]}"#,
    );
    assert_eq!(status, 202, "{}", body.to_json());
    assert_eq!(body.get("accepted").unwrap().as_i64(), Some(3));

    // The epoch thread publishes asynchronously; poll for the verdict.
    assert!(poll_until(Duration::from_secs(10), || {
        let (s, _) = request(addr, "GET", "/v1/facts/sky%20is%20blue", "");
        s == 200
    }));
    let (_, fact) = request(addr, "GET", "/v1/facts/sky%20is%20blue", "");
    assert_eq!(fact.get("fact").unwrap().as_str(), Some("sky is blue"));
    assert!(fact.get("probability").is_some());
    assert_eq!(fact.get("votes").unwrap().as_array().unwrap().len(), 3);

    let (status, trust) = request(addr, "GET", "/v1/sources/alice/trust", "");
    assert_eq!(status, 200);
    assert!(trust.get("trust").is_some());

    let (status, _) = request(addr, "GET", "/v1/facts/never-heard-of-it", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/v1/sources/nobody/trust", "");
    assert_eq!(status, 404);

    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    handle.shutdown().unwrap();
}

#[test]
fn malformed_requests_get_4xx() {
    let handle = start(test_config()).unwrap();
    let addr = handle.addr();

    let (status, _) = request(addr, "POST", "/v1/votes", "this is not json");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/v1/votes", r#"{"votes":[{"source":"a"}]}"#);
    assert_eq!(status, 400);
    let (status, _) =
        request(addr, "POST", "/v1/votes", r#"{"votes":[{"source":"a","fact":"f","vote":"X"}]}"#);
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/v1/votes", "{}");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/v1/votes", "");
    assert_eq!(status, 405);

    // Oversized body → 413.
    let config = ServerConfig { max_body_bytes: 64, ..test_config() };
    let small = start(config).unwrap();
    let big = format!(r#"{{"votes":[{{"source":"{}","fact":"f","vote":"T"}}]}}"#, "s".repeat(200));
    let (status, _) = request(small.addr(), "POST", "/v1/votes", &big);
    assert_eq!(status, 413);

    small.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn saturated_queue_answers_429_and_recovers() {
    // A tiny queue and a slow epoch cadence guarantee overflow.
    let config = ServerConfig {
        queue_capacity: 8,
        epoch_linger: Duration::from_millis(300),
        epoch_max_batch: 2,
        ..test_config()
    };
    let handle = start(config).unwrap();
    let addr = handle.addr();

    let mut saw_429 = false;
    for i in 0..40 {
        let body = format!(
            r#"{{"votes":[{{"source":"s{i}","fact":"f{}","vote":"T"}},
                          {{"source":"t{i}","fact":"f{}","vote":"F"}}]}}"#,
            i % 5,
            i % 5
        );
        let (status, _) = request(addr, "POST", "/v1/votes", &body);
        assert!(status == 202 || status == 429, "unexpected status {status}");
        if status == 429 {
            saw_429 = true;
            break;
        }
    }
    assert!(saw_429, "queue never saturated");

    // Backpressure is transient: once the epoch thread drains, ingest
    // succeeds again.
    assert!(poll_until(Duration::from_secs(10), || {
        let (status, _) = request(
            addr,
            "POST",
            "/v1/votes",
            r#"{"votes":[{"source":"late","fact":"f0","vote":"T"}]}"#,
        );
        status == 202
    }));

    let metrics = handle.metrics_json();
    let rejected =
        metrics.get("counters").unwrap().get("ingest_rejected").unwrap().as_i64().unwrap();
    assert!(rejected >= 1);

    handle.shutdown().unwrap();
}

/// Like [`request_raw`] but also returns the value of `header` (lowercase
/// name), when present.
fn request_with_header(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    header: &str,
) -> (u16, Option<String>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut value = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix(&format!("{header}:")) {
            value = Some(v.trim().to_string());
        }
    }
    (status, value)
}

#[test]
fn shed_writes_carry_a_retry_after_header() {
    // Same saturation recipe as above, but capture the 429's headers: shed
    // clients must get an honest machine-readable backoff hint.
    let config = ServerConfig {
        queue_capacity: 8,
        epoch_linger: Duration::from_millis(300),
        epoch_max_batch: 2,
        ..test_config()
    };
    let handle = start(config).unwrap();
    let addr = handle.addr();

    let mut retry_after = None;
    for i in 0..40 {
        let body = format!(
            r#"{{"votes":[{{"source":"s{i}","fact":"f{}","vote":"T"}},
                          {{"source":"t{i}","fact":"f{}","vote":"F"}}]}}"#,
            i % 5,
            i % 5
        );
        let (status, header) = request_with_header(addr, "POST", "/v1/votes", &body, "retry-after");
        assert!(status == 202 || status == 429, "unexpected status {status}");
        if status == 202 {
            assert!(header.is_none(), "accepted writes must not advertise backoff");
        } else {
            retry_after = header;
            break;
        }
    }
    let retry_after = retry_after.expect("queue never saturated or 429 lacked Retry-After");
    let secs: u64 = retry_after.parse().expect("Retry-After must be integral seconds");
    assert!(secs >= 1, "backoff hint must be at least one second");

    handle.shutdown().unwrap();
}

#[test]
fn metrics_document_is_valid_and_complete() {
    let handle = start(test_config()).unwrap();
    let addr = handle.addr();
    request(
        addr,
        "POST",
        "/v1/votes",
        r#"{"sources":["quiet"],"votes":[{"source":"a","fact":"f","vote":"T"}]}"#,
    );
    poll_until(Duration::from_secs(10), || {
        let (s, _) = request(addr, "GET", "/v1/facts/f", "");
        s == 200
    });

    let (status, doc) = request(addr, "GET", "/metrics.json", "");
    assert_eq!(status, 200);
    // The report_check contract: header keys present and non-null.
    assert!(doc.get("report").is_some());
    assert!(doc.get("schema_version").is_some());
    let counters = doc.get("counters").unwrap();
    for key in ["http_requests", "http_responses_2xx", "ingest_batches", "epochs", "epochs_full"] {
        let v = counters.get(key).unwrap_or_else(|| panic!("missing counter {key}"));
        assert!(v.as_i64().unwrap() >= 1, "counter {key} never moved");
    }
    let gauges = doc.get("gauges").unwrap();
    assert!(gauges.get("ingest_queue_peak").is_some());
    for key in ["epoch_lag_seconds", "shed_rate_per_sec", "wal_fsync_p99_seconds"] {
        assert!(gauges.get(key).is_some(), "missing derived gauge {key}");
    }
    assert!(doc.get("spans").unwrap().get("request").is_some());

    // The Prometheus surface serves the same state as text exposition.
    let (status, prom, content_type) = request_raw(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(content_type, "text/plain; version=0.0.4");
    assert!(prom.starts_with("# "), "not text exposition");
    for family in [
        "# TYPE corroborate_http_requests_total counter",
        "# TYPE corroborate_request_seconds histogram",
        "# TYPE corroborate_epoch gauge",
        "corroborate_ingest_queue_peak",
        "corroborate_epoch_lag_seconds",
    ] {
        assert!(prom.contains(family), "missing {family}");
    }

    handle.shutdown().unwrap();
}

#[test]
fn traced_server_exports_a_hierarchical_chrome_trace() {
    let dir = tempdir("traced");
    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        wal: WalConfig { fsync: true, ..WalConfig::default() },
        trace_capacity: 4096,
        ..test_config()
    };
    let handle = start(config).unwrap();
    assert!(handle.trace_enabled());
    let addr = handle.addr();

    let (status, _) = request(
        addr,
        "POST",
        "/v1/votes",
        r#"{"votes":[{"source":"a","fact":"traced","vote":"T"},
                     {"source":"b","fact":"traced","vote":"T"}]}"#,
    );
    assert_eq!(status, 202);
    assert!(poll_until(Duration::from_secs(10), || {
        let (s, _) = request(addr, "GET", "/v1/facts/traced", "");
        s == 200
    }));

    let (_, snapshot) = handle.shutdown_with_trace().unwrap();
    assert_eq!(snapshot.torn, 0);
    use corroborate_obs::{Span, TraceKind};
    let begins = |span: Span| {
        snapshot.events.iter().filter(move |e| e.span == span && e.kind == TraceKind::Begin)
    };
    // The epoch span tree: the group commit (wal_batch, wrapping the
    // framed wal_append) and re-score children parented to an epoch span.
    let epoch = begins(Span::Epoch).next().expect("an epoch span");
    assert!(epoch.id != 0);
    for child_span in [Span::WalBatch, Span::Rescore, Span::ViewPublish] {
        assert!(
            begins(child_span).any(|e| { begins(Span::Epoch).any(|parent| parent.id == e.parent) }),
            "{child_span:?} must be a child of an epoch span"
        );
    }
    assert!(
        begins(Span::WalAppend).any(|e| begins(Span::WalBatch).any(|parent| parent.id == e.parent)),
        "the frame write nests inside its group commit"
    );
    // Fsync is pipelined: the span surfaces when the *next* group commit
    // (or the shutdown barrier) collects it, so it exists but is not a
    // child of the append that submitted it.
    let fsync = begins(Span::WalFsync).next().expect("an fsync span (fsync is on)");
    assert!(fsync.payload >= 1, "fsync span carries the batch's first sequence");
    assert!(begins(Span::Request).next().is_some(), "request spans recorded");
    assert!(begins(Span::QueueDrain).next().is_some(), "queue-drain spans recorded");
    // The export round-trips through the strict JSON parser.
    let doc = corroborate_obs::chrome_trace_json(&snapshot);
    let text = doc.to_json_pretty();
    let parsed = Json::parse(&text).unwrap();
    assert!(!parsed.get("traceEvents").unwrap().as_array().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_server_returns_an_empty_snapshot() {
    let handle = start(test_config()).unwrap();
    assert!(!handle.trace_enabled());
    let (status, _) = request(handle.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (_, snapshot) = handle.shutdown_with_trace().unwrap();
    assert!(snapshot.events.is_empty());
}

#[test]
fn graceful_shutdown_drains_and_wal_survives_restart() {
    let dir = tempdir("restart");
    let config = ServerConfig { data_dir: Some(dir.clone()), ..test_config() };
    let handle = start(config).unwrap();
    let addr = handle.addr();

    let (status, _) = request(
        addr,
        "POST",
        "/v1/votes",
        r#"{"votes":[{"source":"a","fact":"persistent","vote":"T"},
                     {"source":"b","fact":"persistent","vote":"T"}]}"#,
    );
    assert_eq!(status, 202);

    // The admin endpoint flips the server into draining.
    let (status, body) = request(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 202);
    assert_eq!(body.get("draining"), Some(&Json::Bool(true)));
    assert!(handle.shutdown_requested());

    // shutdown() completes the drain; the final view is a full recompute
    // including the accepted votes.
    let view = handle.shutdown().unwrap();
    assert!(view.is_full());
    let fact = view.fact_by_name("persistent").expect("drained view includes the ingested fact");
    assert!(view.probability(fact) > 0.5);

    // Restart from the same data dir: the fact is immediately queryable.
    let config = ServerConfig {
        data_dir: Some(dir),
        wal: WalConfig::default(),
        epoch: EpochConfig::default(),
        ..test_config()
    };
    let restarted = start(config).unwrap();
    let (status, fact) = request(restarted.addr(), "GET", "/v1/facts/persistent", "");
    assert_eq!(status, 200, "recovered fact must be served before any new ingest");
    assert_eq!(fact.get("stale"), Some(&Json::Bool(false)));
    assert_eq!(fact.get("votes").unwrap().as_array().unwrap().len(), 2);
    restarted.shutdown().unwrap();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let handle = start(test_config()).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    for _ in 0..3 {
        write!(writer, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        writer.flush().unwrap();
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 200"), "{status_line:?}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
    }
    handle.shutdown().unwrap();
}
