//! Property tests for the replication pipeline: for any archetype stream,
//! group-commit chunking, and crash point,
//! `replica_view(ship(crash(append(m))))` is fingerprint-identical to a
//! primary that applied the same acked prefix — at *every* acked batch
//! boundary, not just after a drain.
//!
//! The replica's epoch schedule mirrors the primary's (one `Auto` epoch
//! per applied batch when mutations are pending), so intermediate views
//! are bit-identical, which is exactly what `/cluster` in-sync reporting
//! and the loadgen's fingerprint check rely on.

use std::path::Path;
use std::sync::Arc;

use corroborate_obs::NOOP;
use corroborate_serve::{
    DeltaDataset, EpochConfig, EpochEngine, EpochMode, FaultFs, Mutation, ReplicaCore, ShipLog,
    TailResponse, Wal, WalConfig, WalFs,
};
use corroborate_testkit::sim::{generate, standard_archetypes};
use proptest::prelude::*;

/// Longest stream prefix a single case replays; bounds per-case epoch work
/// while still crossing many segment and batch boundaries.
const MAX_STREAM: usize = 120;

/// A primary-side engine that applies chunks on the same schedule the
/// serve loop uses: journal the batch, drop invalid mutations, run one
/// `Auto` epoch when anything is pending.
struct ReferencePrimary {
    engine: EpochEngine,
    fingerprint: u64,
}

impl ReferencePrimary {
    fn new() -> Self {
        let mut engine = EpochEngine::new(EpochConfig::default()).unwrap();
        let (view, _) = engine.run_epoch(EpochMode::Full).unwrap();
        Self { engine, fingerprint: view.fingerprint() }
    }

    fn apply_batch(&mut self, batch: &[Mutation]) {
        for m in batch {
            let _ = self.engine.apply(m);
        }
        if self.engine.pending() > 0 {
            let (view, _) = self.engine.run_epoch(EpochMode::Auto).unwrap();
            self.fingerprint = view.fingerprint();
        }
    }
}

/// One shipped frame starting at `from_seq` (max_bytes=1 keeps it single).
fn one_frame(ship: &ShipLog, from_seq: u64) -> Vec<u8> {
    match ship.tail_since(from_seq, 1) {
        TailResponse::Frames { bytes, frames, .. } => {
            assert_eq!(frames, 1, "expected a single frame");
            bytes
        }
        other => panic!("expected a frame at {from_seq}, got {other:?}"),
    }
}

proptest! {
    #[test]
    fn replica_matches_the_primary_at_every_acked_batch_boundary(
        pick in any::<u8>(),
        seed in 0u64..1_000,
        segment_bytes in 128u64..2048,
        chunk in 1usize..9,
        budget in 64u64..8192,
    ) {
        // Sweep the testkit archetypes: `pick` indexes into the standard
        // family, `seed` varies the generated world.
        let archetypes = standard_archetypes(seed);
        let (_, archetype) = &archetypes[pick as usize % archetypes.len()];
        let world = generate(archetype);
        let mut stream = DeltaDataset::mutations_of(&world.dataset);
        stream.truncate(MAX_STREAM);

        // crash(append(m)): group-commit the stream on the primary until
        // the write budget tears a batch; the ship log holds exactly the
        // acked (durable) frames.
        let primary_fs = FaultFs::new();
        let config = WalConfig { segment_bytes, ..WalConfig::default() };
        let ship = Arc::new(ShipLog::new(64 << 20));
        let mut acks = vec![0usize];
        {
            let (mut wal, _) = Wal::open_with(
                Path::new("/primary"),
                config,
                Arc::new(primary_fs.clone()),
                &NOOP,
            )
            .unwrap();
            wal.attach_shipper(Arc::clone(&ship)).unwrap();
            primary_fs.set_crash_after_write_bytes(budget);
            for batch in stream.chunks(chunk) {
                match wal.append_batch(batch) {
                    Ok(_) => acks.push(acks.last().unwrap() + batch.len()),
                    Err(_) => break,
                }
            }
        }
        prop_assert_eq!(ship.durable_seq() as usize, *acks.last().unwrap());

        // ship(..) → replica_view(..): feed the replica one shipped frame
        // at a time and pace a reference primary through the same acked
        // batches, comparing published fingerprints at every boundary.
        let replica_fs: Arc<dyn WalFs> = Arc::new(FaultFs::new());
        let (mut core, initial) = ReplicaCore::recover(
            Path::new("/replica"),
            replica_fs,
            WalConfig::default(),
            EpochConfig::default(),
            &NOOP,
        )
        .unwrap();
        let mut reference = ReferencePrimary::new();
        prop_assert_eq!(initial.fingerprint(), reference.fingerprint, "empty views diverge");

        let mut replica_fp = initial.fingerprint();
        for window in acks.windows(2) {
            let (lo, hi) = (window[0], window[1]);
            let frame = one_frame(&ship, lo as u64 + 1);
            let applied = core.apply_shipped(&frame, &NOOP).unwrap();
            prop_assert!(applied.torn.is_none(), "durable frames are never torn");
            prop_assert_eq!(core.applied_seq(), hi as u64);
            if let Some(view) = applied.view {
                replica_fp = view.fingerprint();
            }
            reference.apply_batch(&stream[lo..hi]);
            prop_assert_eq!(
                replica_fp,
                reference.fingerprint,
                "fingerprints diverge at acked boundary {}",
                hi
            );
        }

        // And the drain points agree too: a full epoch on both sides.
        let drained = core.publish_epoch(EpochMode::Full).unwrap();
        let (want, _) = reference.engine.run_epoch(EpochMode::Full).unwrap();
        prop_assert_eq!(drained.fingerprint(), want.fingerprint());
    }
}
