//! The streamed-vs-batch differential gate.
//!
//! Every testkit archetype is converted to its mutation stream and fed
//! through the [`EpochEngine`] in randomized chunk sizes (seeded, so
//! failures reproduce). After the drain epoch — a forced full recompute —
//! the published [`VerdictView`] must fingerprint bit-identically to a
//! one-shot batch evaluation of the same dataset, whatever the chunking,
//! and whatever mix of incremental/full epochs the scheduler picked along
//! the way.

use corroborate_serve::{
    evaluate_batch, DeltaDataset, EpochConfig, EpochEngine, EpochMode, Mutation,
};
use corroborate_testkit::sim::{generate, standard_archetypes};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Streams `mutations` through an engine in random chunks, running one
/// Auto epoch per chunk, then drains.
fn stream_in_chunks(
    mutations: &[Mutation],
    config: EpochConfig,
    rng: &mut StdRng,
) -> (u64, usize, usize) {
    let mut engine = EpochEngine::new(config).unwrap();
    let mut full_epochs = 0;
    let mut incremental_epochs = 0;
    let mut i = 0;
    while i < mutations.len() {
        let chunk = rng.gen_range(1usize..=64);
        let end = (i + chunk).min(mutations.len());
        for m in &mutations[i..end] {
            engine.apply(m).unwrap();
        }
        if engine.pending() > 0 {
            let (_, stats) = engine.run_epoch(EpochMode::Auto).unwrap();
            if stats.full {
                full_epochs += 1;
            } else {
                incremental_epochs += 1;
            }
        }
        i = end;
    }
    let (view, stats) = engine.drain().unwrap();
    assert!(stats.full, "drain must be a full recompute");
    (view.fingerprint(), full_epochs, incremental_epochs)
}

#[test]
fn every_archetype_streams_to_the_batch_fingerprint() {
    let config = EpochConfig::default();
    for (name, archetype) in standard_archetypes(41) {
        let world = generate(&archetype);
        let mutations = DeltaDataset::mutations_of(&world.dataset);
        let batch = evaluate_batch(world.dataset, &config).unwrap();
        let expected = batch.fingerprint();

        let mut rng = StdRng::seed_from_u64(0xd1ff ^ name.len() as u64);
        for trial in 0..3 {
            let (got, _, _) = stream_in_chunks(&mutations, config, &mut rng);
            assert_eq!(
                got, expected,
                "archetype {name}, trial {trial}: streamed fingerprint diverged from batch"
            );
        }
    }
}

#[test]
fn chunking_exercises_both_epoch_modes() {
    // With the default threshold, big archetypes streamed in small chunks
    // must actually take the incremental path some of the time — otherwise
    // the differential gate would only ever test full recomputes.
    let (_, archetype) = &standard_archetypes(42)[0];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, full, incremental) = stream_in_chunks(&mutations, EpochConfig::default(), &mut rng);
    assert!(full >= 1, "the first epoch is always full");
    assert!(incremental >= 1, "expected at least one incremental epoch, got {incremental}");
}

#[test]
fn single_chunk_stream_equals_batch_exactly() {
    // Degenerate chunking: everything in one epoch. Beyond the
    // fingerprint, every probability and trust value matches bit-for-bit.
    let (_, archetype) = &standard_archetypes(43)[1];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);

    let mut engine = EpochEngine::new(EpochConfig::default()).unwrap();
    for m in &mutations {
        engine.apply(m).unwrap();
    }
    let (view, _) = engine.drain().unwrap();
    let batch = evaluate_batch(world.dataset, &EpochConfig::default()).unwrap();

    assert_eq!(view.fingerprint(), batch.fingerprint());
    let probs: Vec<u64> = view.probabilities().iter().map(|p| p.to_bits()).collect();
    let batch_probs: Vec<u64> = batch.probabilities().iter().map(|p| p.to_bits()).collect();
    assert_eq!(probs, batch_probs);
    let trust: Vec<u64> = view.trust().values().iter().map(|t| t.to_bits()).collect();
    let batch_trust: Vec<u64> = batch.trust().values().iter().map(|t| t.to_bits()).collect();
    assert_eq!(trust, batch_trust);
    assert_eq!(view.rounds(), batch.rounds());
}

#[test]
fn vote_overrides_converge_to_the_final_state() {
    // A stream that flips votes mid-way must converge to the batch result
    // of the *final* state (last writer wins), not any intermediate one.
    let (_, archetype) = &standard_archetypes(44)[2];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);

    // Prepend a contradicting copy of every vote: the final state is the
    // original dataset, reached through a full overwrite.
    let mut noisy: Vec<Mutation> = mutations
        .iter()
        .filter_map(|m| match m {
            Mutation::Cast { source, fact, vote } => Some(Mutation::Cast {
                source: source.clone(),
                fact: fact.clone(),
                vote: if vote.as_bool() {
                    corroborate_core::vote::Vote::False
                } else {
                    corroborate_core::vote::Vote::True
                },
            }),
            _ => None,
        })
        .collect();
    noisy.extend(mutations.iter().cloned());

    let mut rng = StdRng::seed_from_u64(99);
    let (got, _, _) = stream_in_chunks(&noisy, EpochConfig::default(), &mut rng);
    let batch = evaluate_batch(world.dataset, &EpochConfig::default()).unwrap();
    assert_eq!(got, batch.fingerprint());
}
