//! Property tests for the group-commit segmented WAL: for *any* mutation
//! stream, segment size, batching, and crash point,
//! `replay(crash(append(m)))` is a batch-boundary prefix of `m` — recovery
//! never loses a durable batch boundary and never resurrects a torn batch.
//!
//! Two crash models are swept:
//!
//! - **write-budget crashes** ([`FaultFs::set_crash_after_write_bytes`]):
//!   the byte stream tears mid-write at a seeded offset, exactly like a
//!   power cut during `write(2)`;
//! - **post-hoc truncation**: the highest segment is chopped at a random
//!   offset, the classic torn-tail artefact.
//!
//! Runs under the same `PROPTEST_CASES` boost the conformance CI job uses.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use corroborate_core::vote::Vote;
use corroborate_obs::NOOP;
use corroborate_serve::{DeltaDataset, FaultFs, Mutation, Wal, WalConfig, WalFs};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    // Casts dominate (5/7), as in the real ingest mix; fact labels are a
    // function of the name so re-registration never conflicts.
    (0u8..7, 0usize..8, 0usize..10, any::<bool>()).prop_map(|(kind, s, f, v)| match kind {
        5 => Mutation::AddSource { name: format!("s{s}") },
        6 => Mutation::AddFact {
            name: format!("f{f}"),
            label: if v {
                Some(corroborate_core::truth::Label::from_bool(f % 2 == 0))
            } else {
                None
            },
        },
        _ => Mutation::Cast {
            source: format!("s{s}"),
            fact: format!("f{f}"),
            vote: if v { Vote::True } else { Vote::False },
        },
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Mutation>> {
    vec(arb_mutation(), 5..150)
}

/// Appends `stream` in `chunk`-sized group commits until a fault surfaces,
/// returning the cumulative mutation counts at every acked batch boundary.
fn append_until_fault(wal: &mut Wal, stream: &[Mutation], chunk: usize) -> Vec<usize> {
    let mut acks = vec![0usize];
    for batch in stream.chunks(chunk) {
        match wal.append_batch(batch) {
            Ok(_) => acks.push(acks.last().unwrap() + batch.len()),
            Err(_) => break,
        }
    }
    acks
}

/// Asserts the recovered dataset equals a direct apply of `stream[..n]`.
fn assert_prefix_equivalent(recovered: &DeltaDataset, stream: &[Mutation], n: usize) {
    let mut reference = DeltaDataset::new();
    reference.apply_all(&stream[..n]).unwrap();
    let got = recovered.clone().materialize().unwrap();
    let want = reference.materialize().unwrap();
    assert_eq!(got.votes(), want.votes(), "recovered votes diverge from the {n}-prefix");
    assert_eq!(got.n_sources(), want.n_sources());
    assert_eq!(got.n_facts(), want.n_facts());
}

/// Name of the highest-numbered segment currently in `dir`.
fn last_segment(fs: &FaultFs, dir: &Path) -> Option<PathBuf> {
    let names = fs.list(dir).ok()?;
    names.iter().rfind(|n| n.starts_with("wal.") && n.ends_with(".seg")).map(|n| dir.join(n))
}

proptest! {
    #[test]
    fn write_budget_crash_recovers_a_batch_boundary_prefix(
        stream in arb_stream(),
        segment_bytes in 64u64..1024,
        chunk in 1usize..9,
        budget in 16u64..4096,
    ) {
        let fs = FaultFs::new();
        let dir = PathBuf::from("/wal");
        let config = WalConfig { segment_bytes, ..WalConfig::default() };
        let acks = {
            let (mut wal, _) =
                Wal::open_with(&dir, config, Arc::new(fs.clone()), &NOOP).unwrap();
            fs.set_crash_after_write_bytes(budget);
            append_until_fault(&mut wal, &stream, chunk)
        };
        fs.reset_faults();
        let (_, recovery) =
            Wal::open_with(&dir, config, Arc::new(fs), &NOOP).expect("recovery must not fail");
        let replayed = recovery.replayed as usize;
        prop_assert!(
            acks.contains(&replayed),
            "replayed {replayed} is not an acked batch boundary of {acks:?}"
        );
        assert_prefix_equivalent(&recovery.dataset, &stream, replayed);
    }

    #[test]
    fn truncation_crash_recovers_a_batch_boundary_prefix(
        stream in arb_stream(),
        segment_bytes in 64u64..1024,
        chunk in 1usize..9,
        cut_fraction in 0.0f64..1.0,
    ) {
        let fs = FaultFs::new();
        let dir = PathBuf::from("/wal");
        let config = WalConfig { segment_bytes, ..WalConfig::default() };
        let acks = {
            let (mut wal, _) =
                Wal::open_with(&dir, config, Arc::new(fs.clone()), &NOOP).unwrap();
            append_until_fault(&mut wal, &stream, chunk)
        };
        // Chop the tail segment at a fraction of its length.
        if let Some(seg) = last_segment(&fs, &dir) {
            if let Some(len) = fs.len(&seg) {
                fs.truncate_raw(&seg, (len as f64 * cut_fraction) as usize);
            }
        }
        let (_, recovery) =
            Wal::open_with(&dir, config, Arc::new(fs), &NOOP).expect("recovery must not fail");
        let replayed = recovery.replayed as usize;
        prop_assert!(
            acks.contains(&replayed),
            "replayed {replayed} is not an acked batch boundary of {acks:?}"
        );
        assert_prefix_equivalent(&recovery.dataset, &stream, replayed);
    }

    #[test]
    fn faultless_append_replay_is_lossless(
        stream in arb_stream(),
        segment_bytes in 64u64..1024,
        chunk in 1usize..9,
    ) {
        let fs = FaultFs::new();
        let dir = PathBuf::from("/wal");
        let config = WalConfig { segment_bytes, ..WalConfig::default() };
        {
            let (mut wal, _) =
                Wal::open_with(&dir, config, Arc::new(fs.clone()), &NOOP).unwrap();
            for batch in stream.chunks(chunk) {
                wal.append_batch(batch).unwrap();
            }
        }
        let (_, recovery) =
            Wal::open_with(&dir, config, Arc::new(fs), &NOOP).unwrap();
        prop_assert_eq!(recovery.replayed as usize, stream.len());
        prop_assert!(!recovery.dropped_torn_tail);
        assert_prefix_equivalent(&recovery.dataset, &stream, stream.len());
    }
}
