//! Seeded schedule-fuzzing for the bounded ingest queue.
//!
//! `loom` is not available in this tree, so this is the poor-man's model
//! checker: many short runs, each seeded, with every thread jittering its
//! schedule (spin / yield / micro-sleep) from its own deterministic LCG so
//! different interleavings are explored while failures stay reproducible
//! by seed. Invariants checked per run:
//!
//! - nothing is lost or duplicated: the multiset drained equals the
//!   multiset successfully pushed (rejected batches leave no residue);
//! - per-producer FIFO order survives batching and the linger window;
//! - the capacity bound and the `high_water` gauge are never exceeded;
//! - after `close`, the consumer drains the remainder and sees `None`.
//!
//! The group-commit schedule fuzzer extends the model through the WAL:
//! producers race `close()` while the consumer group-commits every drained
//! batch into a segmented WAL over [`FaultFs`] with tiny segments and an
//! aggressive compaction threshold, so appends race seals, background
//! snapshot compaction, and shutdown. Recovery then proves FIFO batch
//! order and that no acked mutation was lost.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use corroborate_core::vote::Vote;
use corroborate_obs::NOOP;
use corroborate_serve::delta::{DeltaDataset, Mutation};
use corroborate_serve::queue::IngestQueue;
use corroborate_serve::{FaultFs, ServeError, Wal, WalConfig};

/// Deterministic schedule jitter: a per-thread LCG (numerical recipes
/// constants) deciding between spinning, yielding, and micro-sleeps.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn jitter(&mut self) {
        match self.next() % 4 {
            0 => {}
            1 => std::hint::spin_loop(),
            2 => std::thread::yield_now(),
            _ => std::thread::sleep(Duration::from_micros(self.next() % 50)),
        }
    }
}

fn cast(producer: usize, index: usize) -> Mutation {
    Mutation::Cast {
        source: format!("p{producer}m{index}"),
        fact: "f".to_string(),
        vote: Vote::True,
    }
}

fn source_of(m: &Mutation) -> &str {
    match m {
        Mutation::Cast { source, .. } => source,
        _ => unreachable!("fuzz pushes only Cast mutations"),
    }
}

/// One seeded run: `producers` threads each push `per_producer` mutations
/// in jittered batches (retrying on QueueFull), one consumer drains with a
/// tiny linger until close. Returns nothing — panics on invariant breach.
fn run_schedule(seed: u64, producers: usize, per_producer: usize, capacity: usize) {
    let queue = Arc::new(IngestQueue::new(capacity));
    let consumer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let mut rng = Lcg(seed ^ 0xC0FFEE);
            let mut drained: Vec<Mutation> = Vec::new();
            loop {
                let max = 1 + (rng.next() as usize % 7);
                match queue.drain_batch(max, Duration::from_micros(rng.next() % 300)) {
                    Some(batch) => {
                        assert!(batch.len() <= max, "drain_batch returned more than max");
                        drained.extend(batch);
                    }
                    None => return drained,
                }
                rng.jitter();
            }
        })
    };

    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut rng = Lcg(seed.wrapping_add(p as u64 * 7919));
                let mut sent = 0usize;
                while sent < per_producer {
                    let want = 1 + (rng.next() as usize % 3);
                    let take = want.min(per_producer - sent);
                    let batch: Vec<Mutation> = (sent..sent + take).map(|i| cast(p, i)).collect();
                    match queue.try_push(batch) {
                        Ok(()) => sent += take,
                        Err(ServeError::QueueFull { capacity: c }) => {
                            assert_eq!(c, capacity);
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("unexpected push error: {e:?}"),
                    }
                    rng.jitter();
                }
            })
        })
        .collect();

    for h in handles {
        h.join().unwrap();
    }
    assert!(queue.high_water() <= capacity, "high_water exceeded capacity");
    queue.close();
    assert!(queue.try_push(vec![cast(99, 0)]).is_err(), "closed queue accepted a push");
    let drained = consumer.join().unwrap();

    // Lossless and duplicate-free: every pushed mutation appears exactly
    // once, and each producer's stream arrives in FIFO order.
    assert_eq!(drained.len(), producers * per_producer);
    let mut next_index = vec![0usize; producers];
    for m in &drained {
        let source = source_of(m);
        let (p, i) = source[1..].split_once('m').unwrap();
        let (p, i): (usize, usize) = (p.parse().unwrap(), i.parse().unwrap());
        assert_eq!(
            i, next_index[p],
            "seed {seed}: producer {p} order broken (got m{i}, expected m{})",
            next_index[p]
        );
        next_index[p] = i + 1;
    }
    assert!(next_index.iter().all(|&n| n == per_producer));
}

#[test]
fn seeded_schedules_preserve_queue_invariants() {
    // Tight capacity forces heavy QueueFull backpressure; roomy capacity
    // exercises the linger/batch window instead.
    for seed in 0..12u64 {
        run_schedule(seed, 3, 40, 8);
    }
    for seed in 100..106u64 {
        run_schedule(seed, 4, 25, 64);
    }
}

#[test]
fn close_during_traffic_never_strands_accepted_mutations() {
    // Producers race close(): pushes may fail with QueueClosed, but every
    // *accepted* mutation must still come out exactly once.
    for seed in 0..10u64 {
        let queue = Arc::new(IngestQueue::new(16));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut drained = Vec::new();
                while let Some(batch) = queue.drain_batch(5, Duration::from_micros(100)) {
                    drained.extend(batch);
                }
                drained
            })
        };
        let accepted: Vec<_> = (0..3)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut rng = Lcg(seed.wrapping_add(p as u64 * 31));
                    let mut ok = Vec::new();
                    for i in 0..30 {
                        match queue.try_push(vec![cast(p, i)]) {
                            Ok(()) => ok.push(format!("p{p}m{i}")),
                            Err(ServeError::QueueClosed) => break,
                            Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected push error: {e:?}"),
                        }
                        rng.jitter();
                    }
                    ok
                })
            })
            .collect();
        std::thread::sleep(Duration::from_micros(seed * 137));
        queue.close();
        let mut expected: Vec<String> =
            accepted.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let mut got: Vec<String> =
            consumer.join().unwrap().iter().map(|m| source_of(m).to_string()).collect();
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "seed {seed}: accepted and drained sets differ");
    }
}

/// One seeded group-commit run: producers race `close()`, the consumer
/// group-commits every drained batch into a tiny-segment WAL (so appends
/// race seals and background compaction), then compacts on drain. Recovery
/// must hold exactly the acked mutations, in FIFO order per producer.
fn run_group_commit_schedule(seed: u64) {
    const PRODUCERS: usize = 3;
    const PER_PRODUCER: usize = 30;

    let queue = Arc::new(IngestQueue::new(32));
    let fs = FaultFs::new();
    let dir = PathBuf::from("/wal");
    let config =
        WalConfig { compact_after_records: 24, segment_bytes: 1024, ..WalConfig::default() };

    let consumer = {
        let queue = Arc::clone(&queue);
        let fs = fs.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            let (mut wal, _) = Wal::open_with(&dir, config, Arc::new(fs), &NOOP).unwrap();
            let mut rng = Lcg(seed ^ 0xBADC0DE);
            let mut live = DeltaDataset::new();
            let mut appended = 0usize;
            loop {
                let max = 1 + (rng.next() as usize % 9);
                match queue.drain_batch(max, Duration::from_micros(rng.next() % 200)) {
                    Some(batch) => {
                        // The group commit: one frame, one CRC per batch.
                        let receipt = wal.append_batch(&batch).unwrap();
                        assert_eq!(receipt.count as usize, batch.len(), "partial batch ack");
                        for m in &batch {
                            live.apply(m).unwrap();
                        }
                        appended += batch.len();
                        // Races the appends with seal + background snapshot.
                        wal.maybe_compact(&live).unwrap();
                    }
                    None => {
                        // Clean shutdown: fold everything into the snapshot.
                        wal.compact(&live).unwrap();
                        return appended;
                    }
                }
                rng.jitter();
            }
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut rng = Lcg(seed.wrapping_add(p as u64 * 7919));
                let mut acked = 0usize;
                let mut i = 0usize;
                while i < PER_PRODUCER {
                    let take = (1 + (rng.next() as usize % 4)).min(PER_PRODUCER - i);
                    let batch: Vec<Mutation> = (i..i + take).map(|j| cast(p, j)).collect();
                    match queue.try_push(batch) {
                        Ok(()) => {
                            acked += take;
                            i += take;
                        }
                        Err(ServeError::QueueClosed) => break,
                        Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected push error: {e:?}"),
                    }
                    rng.jitter();
                }
                acked
            })
        })
        .collect();

    // Cut the traffic short at a seed-dependent point: some runs close
    // almost immediately, others after the producers finish.
    std::thread::sleep(Duration::from_micros(seed * 211));
    queue.close();
    let acked: Vec<usize> = producers.into_iter().map(|h| h.join().unwrap()).collect();
    let total_acked: usize = acked.iter().sum();
    assert_eq!(
        queue.total_accepted() as usize,
        total_acked,
        "seed {seed}: ack ledger disagrees with producers"
    );
    let appended = consumer.join().unwrap();
    assert_eq!(appended, total_acked, "seed {seed}: consumer lost acked mutations");

    // Recovery: the final compact folded everything into the snapshot, so
    // the log replays empty and the dataset holds exactly the acked votes.
    let (_, recovery) = Wal::open_with(&dir, config, Arc::new(fs), &NOOP).unwrap();
    assert_eq!(recovery.replayed, 0, "seed {seed}: records left outside the final snapshot");
    assert_eq!(
        recovery.dataset.n_votes(),
        total_acked,
        "seed {seed}: recovered votes != acked mutations"
    );

    // FIFO per producer: each producer acks a prefix 0..acked[p], and
    // source-id registration order is append order, so ids must ascend.
    for (p, &n) in acked.iter().enumerate() {
        let mut prev = None;
        for i in 0..n {
            let id = recovery
                .dataset
                .source_id(&format!("p{p}m{i}"))
                .unwrap_or_else(|| panic!("seed {seed}: acked p{p}m{i} missing after recovery"));
            assert!(prev < Some(id), "seed {seed}: producer {p} batch order broken at m{i}");
            prev = Some(id);
        }
        assert!(
            recovery.dataset.source_id(&format!("p{p}m{n}")).is_none() || n == PER_PRODUCER,
            "seed {seed}: producer {p} has votes beyond its acks"
        );
    }
}

#[test]
fn group_commit_schedules_survive_seal_compaction_and_shutdown() {
    for seed in 0..10u64 {
        run_group_commit_schedule(seed);
    }
}
