//! WAL crash-recovery integration tests: the fault-injection crash matrix
//! over every testkit archetype, torn tails, snapshot compaction, and
//! end-to-end recovery equivalence through the epoch engine.
//!
//! The matrix drives the group-commit WAL over [`FaultFs`] and asserts the
//! two recovery invariants for every injection shape:
//!
//! 1. recovery never panics and lands on the longest durable prefix of the
//!    appended batch stream (always a batch boundary — a torn batch is
//!    dropped as a unit, never partially applied), and
//! 2. the recovered state replays bit-identical to a reference append of
//!    that same prefix (drained `VerdictView` fingerprints).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use corroborate_obs::NOOP;
use corroborate_serve::{
    evaluate_batch, DeltaDataset, EpochConfig, EpochEngine, EpochMode, FaultFs, Mutation,
    ReplicaCore, ShipLog, TailResponse, Wal, WalConfig, WalFs,
};
use corroborate_testkit::sim::{generate, standard_archetypes};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn tempdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("corroborate-walrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drains a recovered dataset through the epoch engine and fingerprints
/// the published view — the bit-identical equivalence oracle.
fn drained_fingerprint(dataset: DeltaDataset) -> u64 {
    let mut engine = EpochEngine::from_recovered(dataset, EpochConfig::default()).unwrap();
    engine.drain().unwrap().0.fingerprint()
}

/// Reference fingerprint of the first `n` mutations applied directly.
fn prefix_fingerprint(mutations: &[Mutation], n: usize) -> u64 {
    let mut ds = DeltaDataset::new();
    ds.apply_all(&mutations[..n]).unwrap();
    drained_fingerprint(ds)
}

/// Name of the highest-numbered segment file in `dir` on `fs`.
fn last_segment(fs: &FaultFs, dir: &Path) -> PathBuf {
    let names = fs.list(dir).unwrap();
    let last = names
        .iter()
        .rfind(|n| n.starts_with("wal.") && n.ends_with(".seg"))
        .expect("at least one segment")
        .clone();
    dir.join(last)
}

/// The five crash-matrix injection shapes from the issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Tail truncated inside the last frame's 28-byte header.
    TornHeader,
    /// Tail truncated inside the last frame's mutation payload.
    TornPayload,
    /// Tail truncated inside the last frame's CRC field.
    TornCrc,
    /// Manifest chopped in half — recovery must fall back to the scan.
    TruncatedManifest,
    /// A seeded fsync failure that drops the unsynced suffix (fsync mode).
    FsyncFailure,
}

const SHAPES: [Shape; 5] = [
    Shape::TornHeader,
    Shape::TornPayload,
    Shape::TornCrc,
    Shape::TruncatedManifest,
    Shape::FsyncFailure,
];

/// Runs one (archetype, shape) cell: append the stream in group-commit
/// chunks over FaultFs with tiny segments, inject the fault, recover, and
/// check both matrix invariants. Returns (replayed, durable-boundary set).
fn run_cell(mutations: &[Mutation], shape: Shape) -> (usize, Vec<usize>) {
    const CHUNK: usize = 7;
    let fs = FaultFs::new();
    let dir = PathBuf::from("/wal");
    let config = WalConfig {
        segment_bytes: 256,
        fsync: shape == Shape::FsyncFailure,
        ..WalConfig::default()
    };

    // Cumulative mutation counts at every successfully-acked batch
    // boundary — the only legal recovery points.
    let mut acks: Vec<usize> = vec![0];
    let mut last_frame_bytes = 0u64;
    {
        let (mut wal, _) = Wal::open_with(&dir, config, Arc::new(fs.clone()), &NOOP).unwrap();
        if shape == Shape::FsyncFailure {
            // One-shot failure on the 5th fsync, dropping unsynced bytes —
            // the torn-cache shape real disks produce on power loss.
            fs.fail_fsync(5, true);
        }
        for chunk in mutations.chunks(CHUNK) {
            match wal.append_batch(chunk) {
                Ok(receipt) => {
                    acks.push(acks.last().unwrap() + chunk.len());
                    last_frame_bytes = receipt.bytes;
                }
                Err(_) => break, // fsync failure surfaced: stop appending
            }
        }
    }

    // Inject the crash artefact.
    match shape {
        Shape::TornHeader | Shape::TornPayload | Shape::TornCrc => {
            let seg = last_segment(&fs, &dir);
            let len = fs.len(&seg).unwrap() as u64;
            let frame_start = len - last_frame_bytes;
            let cut = match shape {
                Shape::TornHeader => frame_start + 10, // inside first_seq
                Shape::TornCrc => frame_start + 24,    // inside the crc field
                _ => frame_start + 29,                 // one byte into the payload
            };
            fs.truncate_raw(&seg, cut as usize);
        }
        Shape::TruncatedManifest => {
            let manifest = dir.join("wal.manifest.json");
            let half = fs.len(&manifest).unwrap() / 2;
            fs.truncate_raw(&manifest, half);
        }
        Shape::FsyncFailure => {} // injected live, above
    }

    fs.reset_faults();
    let (_, recovery) = Wal::open_with(&dir, config, Arc::new(fs), &NOOP)
        .expect("every matrix cell must recover without error");
    let replayed = recovery.replayed as usize;

    // Invariant 1: the longest durable prefix, always at a batch boundary.
    assert!(
        acks.contains(&replayed),
        "{shape:?}: recovered {replayed} mutations, not a batch boundary of {acks:?}"
    );
    match shape {
        Shape::TornHeader | Shape::TornPayload | Shape::TornCrc => {
            let total = *acks.last().unwrap();
            let last_chunk = total - acks[acks.len() - 2];
            assert!(recovery.dropped_torn_tail, "{shape:?}: torn tail must be detected");
            assert_eq!(replayed, total - last_chunk, "{shape:?}: exactly the torn batch is lost");
        }
        Shape::TruncatedManifest => {
            assert_eq!(replayed, *acks.last().unwrap(), "{shape:?}: scan recovers everything");
        }
        Shape::FsyncFailure => {} // prefix length depends on sync timing
    }

    // Invariant 2: bit-identical to a reference append of that prefix.
    assert_eq!(
        drained_fingerprint(recovery.dataset),
        prefix_fingerprint(mutations, replayed),
        "{shape:?}: recovered state diverges from the reference prefix"
    );
    (replayed, acks)
}

#[test]
fn crash_matrix_recovers_the_longest_durable_prefix_on_all_archetypes() {
    for (name, archetype) in &standard_archetypes(90) {
        let world = generate(archetype);
        let mutations = DeltaDataset::mutations_of(&world.dataset);
        for shape in SHAPES {
            let (replayed, acks) = run_cell(&mutations, shape);
            assert!(
                replayed <= *acks.last().unwrap(),
                "{name}/{shape:?}: replayed more than was appended"
            );
        }
    }
}

#[test]
fn crash_replay_then_drain_matches_batch() {
    // Write an archetype's whole stream to the WAL, "crash" (drop without
    // compaction), recover, drain — must equal the one-shot batch run.
    let (_, archetype) = &standard_archetypes(50)[0];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let dir = tempdir("replay-drain");

    {
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for m in &mutations {
            wal.append(m).unwrap();
        }
        // Dropped without compact(): recovery must come from the log alone.
    }

    let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(recovery.replayed, mutations.len() as u64);
    assert!(!recovery.dropped_torn_tail);
    let mut engine = EpochEngine::from_recovered(recovery.dataset, EpochConfig::default()).unwrap();
    let (view, _) = engine.drain().unwrap();
    let batch = evaluate_batch(world.dataset, &EpochConfig::default()).unwrap();
    assert_eq!(view.fingerprint(), batch.fingerprint());
}

#[test]
fn segmented_replay_matches_single_segment_replay() {
    // The same stream through tiny segments and through one big segment
    // recovers to identical state — segmentation is invisible to replay.
    let (_, archetype) = &standard_archetypes(91)[1];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let one_dir = tempdir("seg-one");
    let many_dir = tempdir("seg-many");
    let many_config = WalConfig { segment_bytes: 512, ..WalConfig::default() };

    {
        let (mut one, _) = Wal::open(&one_dir, WalConfig::default()).unwrap();
        let (mut many, _) = Wal::open(&many_dir, many_config).unwrap();
        for chunk in mutations.chunks(11) {
            one.append_batch(chunk).unwrap();
            many.append_batch(chunk).unwrap();
        }
    }

    let (_, from_one) = Wal::open(&one_dir, WalConfig::default()).unwrap();
    let (_, from_many) = Wal::open(&many_dir, many_config).unwrap();
    assert_eq!(from_one.segments, 1);
    assert!(from_many.segments > 2, "only {} segments", from_many.segments);
    assert_eq!(from_one.replayed, from_many.replayed);
    assert_eq!(from_one.next_seq, from_many.next_seq);
    assert_eq!(drained_fingerprint(from_one.dataset), drained_fingerprint(from_many.dataset));
}

#[test]
fn truncated_tail_recovers_the_prefix() {
    let (_, archetype) = &standard_archetypes(51)[1];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let dir = tempdir("torn-prefix");

    // Append everything; the last record goes through append_batch so we
    // learn its framed size.
    let last_frame = {
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for m in &mutations[..mutations.len() - 1] {
            wal.append(m).unwrap();
        }
        wal.append_batch(&mutations[mutations.len() - 1..]).unwrap().bytes
    };
    // Crash mid-append: chop 1..frame_len bytes off the single segment, so
    // the cut always lands strictly inside the final record.
    let path = dir.join("wal.000001.seg");
    let bytes = std::fs::read(&path).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let cut = rng.gen_range(1u64..last_frame) as usize;
    std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();

    let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
    assert!(recovery.dropped_torn_tail);
    assert_eq!(recovery.replayed, mutations.len() as u64 - 1, "exactly the torn record is lost");

    // The recovered state equals applying the mutation prefix directly.
    let mut prefix = DeltaDataset::new();
    prefix.apply_all(&mutations[..mutations.len() - 1]).unwrap();
    assert_eq!(
        recovery.dataset.materialize().unwrap().votes(),
        prefix.materialize().unwrap().votes()
    );
}

#[test]
fn replay_then_snapshot_equivalence() {
    // Recovering from (snapshot + live log tail) must equal recovering
    // from the raw log alone — compaction is a pure space optimisation.
    let (_, archetype) = &standard_archetypes(52)[2];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let raw_dir = tempdir("equiv-raw");
    let compact_dir = tempdir("equiv-compact");

    {
        let (mut raw, _) = Wal::open(&raw_dir, WalConfig::default()).unwrap();
        // Compact aggressively: every 32 records.
        let config = WalConfig { compact_after_records: 32, ..WalConfig::default() };
        let (mut compacting, _) = Wal::open(&compact_dir, config).unwrap();
        let mut live = DeltaDataset::new();
        let mut landed = false;
        for m in &mutations {
            raw.append(m).unwrap();
            compacting.append(m).unwrap();
            live.apply(m).unwrap();
            landed |= compacting.maybe_compact(&live).unwrap();
        }
        // Background compaction: wait for at least one snapshot to land so
        // the reopened replay is observably shorter.
        for _ in 0..500 {
            if landed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            landed |= compacting.maybe_compact(&live).unwrap();
        }
        assert!(landed, "no snapshot landed");
    }
    assert!(compact_dir.join("snapshot.json").exists());

    let (_, from_raw) = Wal::open(&raw_dir, WalConfig::default()).unwrap();
    let (_, from_compact) = Wal::open(&compact_dir, WalConfig::default()).unwrap();
    assert!(from_compact.replayed < from_raw.replayed, "compaction must shrink the replay");
    assert_eq!(from_raw.next_seq, from_compact.next_seq);

    // Both recoveries drain to the same verdicts.
    assert_eq!(drained_fingerprint(from_raw.dataset), drained_fingerprint(from_compact.dataset));
}

/// Full-recompute fingerprint of the first `n` mutations — the oracle for
/// replica views (replicas publish via `run_epoch`, not `drain`; the two
/// agree because the fingerprint covers data, not epoch counters).
fn replica_prefix_fingerprint(mutations: &[Mutation], n: usize) -> u64 {
    let mut ds = DeltaDataset::new();
    ds.apply_all(&mutations[..n]).unwrap();
    let mut engine = EpochEngine::from_recovered(ds, EpochConfig::default()).unwrap();
    engine.run_epoch(EpochMode::Full).unwrap().0.fingerprint()
}

/// A primary-side WAL on `FaultFs` with an attached ship log, loaded with
/// `mutations` in group-commit chunks of `chunk`.
fn shipping_primary(
    mutations: &[Mutation],
    chunk: usize,
    config: WalConfig,
) -> (Wal, Arc<ShipLog>) {
    let fs: Arc<dyn WalFs> = Arc::new(FaultFs::new());
    let (mut wal, _) = Wal::open_with(Path::new("/primary"), config, fs, &NOOP).unwrap();
    let ship = Arc::new(ShipLog::new(64 << 20));
    wal.attach_shipper(Arc::clone(&ship)).unwrap();
    for batch in mutations.chunks(chunk) {
        wal.append_batch(batch).unwrap();
    }
    (wal, ship)
}

fn shipped_tail(ship: &ShipLog, from_seq: u64) -> Vec<u8> {
    match ship.tail_since(from_seq, u64::MAX) {
        TailResponse::Frames { bytes, .. } => bytes,
        other => panic!("expected frames from {from_seq}, got {other:?}"),
    }
}

#[test]
fn replica_killed_mid_apply_recovers_a_batch_boundary_and_resumes() {
    // Chaos case: the replica dies partway through journalling shipped
    // frames (a crash budget on its local FaultFs). On restart it must
    // recover to a consistent batch boundary — never a torn view — and
    // then converge by re-fetching the same shipped bytes.
    const CHUNK: usize = 7;
    for (name, archetype) in &standard_archetypes(92)[..2] {
        let world = generate(archetype);
        let mutations = DeltaDataset::mutations_of(&world.dataset);
        let (_primary, ship) = shipping_primary(&mutations, CHUNK, WalConfig::default());
        let shipped = shipped_tail(&ship, 1);

        let fs = Arc::new(FaultFs::new());
        let dir = Path::new("/replica");
        {
            let (mut core, _) = ReplicaCore::recover(
                dir,
                Arc::<FaultFs>::clone(&fs) as Arc<dyn WalFs>,
                WalConfig::default(),
                EpochConfig::default(),
                &NOOP,
            )
            .unwrap();
            // Kill mid-apply: the journal write tears once the budget runs
            // out, so the local WAL ends inside a record.
            fs.set_crash_after_write_bytes(shipped.len() as u64 / 2);
            let died = core.apply_shipped(&shipped, &NOOP);
            assert!(died.is_err(), "{name}: the crash budget must surface");
            assert!(fs.crashed(), "{name}: the injected crash must have fired");
        }

        fs.reset_faults();
        let (mut core, view) = ReplicaCore::recover(
            dir,
            Arc::<FaultFs>::clone(&fs) as Arc<dyn WalFs>,
            WalConfig::default(),
            EpochConfig::default(),
            &NOOP,
        )
        .expect("replica restart must recover without error");
        let applied = core.applied_seq() as usize;
        assert!(
            applied.is_multiple_of(CHUNK) || applied == mutations.len(),
            "{name}: recovered {applied} mutations, not a shipped-batch boundary"
        );
        assert!(applied < mutations.len(), "{name}: the crash should have lost the tail");
        assert_eq!(
            view.fingerprint(),
            replica_prefix_fingerprint(&mutations, applied),
            "{name}: restarted replica serves something other than the durable prefix"
        );

        // Resume: re-applying the full shipped stream skips the journalled
        // prefix and lands the rest, converging on the primary's state.
        let resumed = core.apply_shipped(&shipped, &NOOP).unwrap();
        assert!(resumed.skipped > 0, "{name}: duplicate batches must be skipped");
        assert!(resumed.torn.is_none());
        assert_eq!(core.applied_seq(), mutations.len() as u64);
        let view = core.publish_epoch(EpochMode::Full).unwrap();
        assert_eq!(
            view.fingerprint(),
            replica_prefix_fingerprint(&mutations, mutations.len()),
            "{name}: resumed replica diverges from the primary"
        );
    }
}

#[test]
fn truncated_shipped_segment_applies_only_a_consistent_prefix() {
    // Chaos case: a sealed segment arrives truncated mid-record (torn
    // transfer). The replica journals exactly the CRC-valid batch prefix,
    // publishes that prefix — never a torn view — refuses to skip the gap,
    // and converges once the segment is re-fetched intact.
    const CHUNK: usize = 7;
    let (_, archetype) = &standard_archetypes(93)[2];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let config = WalConfig { segment_bytes: 512, ..WalConfig::default() };
    let (_primary, ship) = shipping_primary(&mutations, CHUNK, config);

    let index = ship.index_json();
    let segments = index.get("segments").unwrap().as_array().unwrap();
    assert!(segments.len() >= 2, "need sealed segments, got {}", segments.len());
    let seg_id = |s: &corroborate_obs::Json, key: &str| {
        u64::try_from(s.get(key).unwrap().as_i64().unwrap()).unwrap()
    };
    let first = &segments[0];
    let (id, seg_last) = (seg_id(first, "segment"), seg_id(first, "last_seq"));
    let intact = ship.read_segment(id).unwrap();

    let fs: Arc<dyn WalFs> = Arc::new(FaultFs::new());
    let (mut core, _) = ReplicaCore::recover(
        Path::new("/replica"),
        fs,
        WalConfig::default(),
        EpochConfig::default(),
        &NOOP,
    )
    .unwrap();

    // Chop 5 bytes off the end: far smaller than any frame, so the cut is
    // always strictly inside the segment's final record.
    let torn = &intact[..intact.len() - 5];
    let applied = core.apply_shipped(torn, &NOOP).unwrap();
    assert!(applied.torn.is_some(), "the torn frame must be detected");
    let boundary = core.applied_seq();
    assert!(boundary < seg_last, "the torn batch must not be applied");
    assert_eq!(boundary % CHUNK as u64, 0, "recovery point is a batch boundary");
    let view = core.publish_epoch(EpochMode::Full).unwrap();
    assert_eq!(
        view.fingerprint(),
        replica_prefix_fingerprint(&mutations, boundary as usize),
        "replica view after a torn segment is not the valid prefix"
    );

    // The replica refuses to jump the gap to later history.
    let later = shipped_tail(&ship, seg_last + 1);
    assert!(
        core.apply_shipped(&later, &NOOP).is_err(),
        "a sequence gap must be refused, not papered over"
    );
    assert_eq!(core.applied_seq(), boundary, "refused bytes must not move the applied seq");

    // Re-fetching the intact segment completes it; the tail then follows.
    let healed = core.apply_shipped(&intact, &NOOP).unwrap();
    assert!(healed.skipped > 0);
    assert_eq!(core.applied_seq(), seg_last);
    core.apply_shipped(&later, &NOOP).unwrap();
    assert_eq!(core.applied_seq(), mutations.len() as u64);
    let view = core.publish_epoch(EpochMode::Full).unwrap();
    assert_eq!(view.fingerprint(), replica_prefix_fingerprint(&mutations, mutations.len()));
}

#[test]
fn interrupted_recover_append_cycles_preserve_everything() {
    // Repeatedly: open, append a slice, drop (no compaction), reopen.
    // Nothing is lost or duplicated across the cycles.
    let (_, archetype) = &standard_archetypes(53)[3];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let dir = tempdir("cycles");

    let mut written = 0;
    let mut rng = StdRng::seed_from_u64(17);
    while written < mutations.len() {
        let (mut wal, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recovery.next_seq, written as u64 + 1, "no loss, no duplication");
        let n = rng.gen_range(1usize..=100).min(mutations.len() - written);
        wal.append_batch(&mutations[written..written + n]).unwrap();
        written += n;
    }

    let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
    let mut whole = DeltaDataset::new();
    whole.apply_all(&mutations).unwrap();
    assert_eq!(
        recovery.dataset.materialize().unwrap().votes(),
        whole.materialize().unwrap().votes()
    );
}
