//! WAL crash-recovery integration tests: torn tails, snapshot compaction,
//! and end-to-end recovery equivalence through the epoch engine.

use std::path::PathBuf;

use corroborate_serve::{evaluate_batch, DeltaDataset, EpochConfig, EpochEngine, Wal, WalConfig};
use corroborate_testkit::sim::{generate, standard_archetypes};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn tempdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("corroborate-walrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn crash_replay_then_drain_matches_batch() {
    // Write an archetype's whole stream to the WAL, "crash" (drop without
    // compaction), recover, drain — must equal the one-shot batch run.
    let (_, archetype) = &standard_archetypes(50)[0];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let dir = tempdir("replay-drain");

    {
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for m in &mutations {
            wal.append(m).unwrap();
        }
        // Dropped without compact(): recovery must come from the log alone.
    }

    let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(recovery.replayed, mutations.len() as u64);
    assert!(!recovery.dropped_torn_tail);
    let mut engine = EpochEngine::from_recovered(recovery.dataset, EpochConfig::default()).unwrap();
    let (view, _) = engine.drain().unwrap();
    let batch = evaluate_batch(world.dataset, &EpochConfig::default()).unwrap();
    assert_eq!(view.fingerprint(), batch.fingerprint());
}

#[test]
fn truncated_tail_recovers_the_prefix() {
    let (_, archetype) = &standard_archetypes(51)[1];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let dir = tempdir("torn-prefix");

    {
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for m in &mutations {
            wal.append(m).unwrap();
        }
    }
    // Crash mid-append: chop an arbitrary number of bytes off the tail,
    // never more than the last record.
    let path = dir.join("wal.log");
    let text = std::fs::read_to_string(&path).unwrap();
    let last_line_len = text.trim_end_matches('\n').rsplit('\n').next().unwrap().len();
    let mut rng = StdRng::seed_from_u64(5);
    let cut = rng.gen_range(1usize..=last_line_len);
    std::fs::write(&path, &text[..text.len() - cut]).unwrap();

    let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
    assert!(recovery.dropped_torn_tail);
    assert_eq!(recovery.replayed, mutations.len() as u64 - 1, "exactly the torn record is lost");

    // The recovered state equals applying the mutation prefix directly.
    let mut prefix = DeltaDataset::new();
    prefix.apply_all(&mutations[..mutations.len() - 1]).unwrap();
    assert_eq!(
        recovery.dataset.materialize().unwrap().votes(),
        prefix.materialize().unwrap().votes()
    );
}

#[test]
fn replay_then_snapshot_equivalence() {
    // Recovering from (snapshot + live log tail) must equal recovering
    // from the raw log alone — compaction is a pure space optimisation.
    let (_, archetype) = &standard_archetypes(52)[2];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let raw_dir = tempdir("equiv-raw");
    let compact_dir = tempdir("equiv-compact");

    {
        let (mut raw, _) = Wal::open(&raw_dir, WalConfig::default()).unwrap();
        // Compact aggressively: every 32 records.
        let config = WalConfig { compact_after_records: 32, fsync: false };
        let (mut compacting, _) = Wal::open(&compact_dir, config).unwrap();
        let mut live = DeltaDataset::new();
        for m in &mutations {
            raw.append(m).unwrap();
            compacting.append(m).unwrap();
            live.apply(m).unwrap();
            compacting.maybe_compact(&live).unwrap();
        }
    }
    assert!(compact_dir.join("snapshot.json").exists());

    let (_, from_raw) = Wal::open(&raw_dir, WalConfig::default()).unwrap();
    let (_, from_compact) = Wal::open(&compact_dir, WalConfig::default()).unwrap();
    assert!(from_compact.replayed < from_raw.replayed, "compaction must shrink the replay");
    assert_eq!(from_raw.next_seq, from_compact.next_seq);

    // Both recoveries drain to the same verdicts.
    let config = EpochConfig::default();
    let (raw_view, _) =
        EpochEngine::from_recovered(from_raw.dataset, config).unwrap().drain().unwrap();
    let (compact_view, _) =
        EpochEngine::from_recovered(from_compact.dataset, config).unwrap().drain().unwrap();
    assert_eq!(raw_view.fingerprint(), compact_view.fingerprint());
}

#[test]
fn interrupted_recover_append_cycles_preserve_everything() {
    // Repeatedly: open, append a slice, drop (no compaction), reopen.
    // Nothing is lost or duplicated across the cycles.
    let (_, archetype) = &standard_archetypes(53)[3];
    let world = generate(archetype);
    let mutations = DeltaDataset::mutations_of(&world.dataset);
    let dir = tempdir("cycles");

    let mut written = 0;
    let mut rng = StdRng::seed_from_u64(17);
    while written < mutations.len() {
        let (mut wal, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recovery.next_seq, written as u64 + 1, "no loss, no duplication");
        let n = rng.gen_range(1usize..=100).min(mutations.len() - written);
        for m in &mutations[written..written + n] {
            wal.append(m).unwrap();
        }
        written += n;
    }

    let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
    let mut whole = DeltaDataset::new();
    whole.apply_all(&mutations).unwrap();
    assert_eq!(
        recovery.dataset.materialize().unwrap().votes(),
        whole.materialize().unwrap().votes()
    );
}
