//! The ML baselines against the testkit's planted worlds: on a linearly
//! separable vote matrix (one perfect full-coverage witness) every
//! classifier must recover the planted labels out-of-fold, and the trust
//! readout must rank the witness first.

use corroborate_core::ids::FactId;
use corroborate_ml::eval::evaluate_on_golden;
use corroborate_ml::kfold::Classifier;
use corroborate_ml::logistic::LogisticRegression;
use corroborate_ml::naive_bayes::NaiveBayes;
use corroborate_ml::svm::LinearSvm;
use corroborate_testkit::sim;

const SEED: u64 = 42;

fn separable_world() -> (corroborate_core::dataset::Dataset, Vec<FactId>) {
    let world = sim::generate(&sim::linearly_separable(SEED));
    let facts: Vec<FactId> = world.dataset.facts().collect();
    (world.dataset, facts)
}

fn cv_accuracy<C: Classifier>(min_accuracy: f64) -> corroborate_ml::eval::MlEvaluation {
    let (ds, facts) = separable_world();
    let eval = evaluate_on_golden::<C>(&ds, &facts, 10, SEED).expect("cross-validation runs");
    let acc = eval.confusion.accuracy();
    assert!(
        acc >= min_accuracy,
        "out-of-fold accuracy {acc:.3} below {min_accuracy} on a linearly separable world"
    );
    // Out-of-fold predictions are hard ±1 decisions for every fact.
    assert_eq!(eval.predictions.len(), facts.len());
    assert!(eval.predictions.iter().all(|p| p.abs() == 1.0));
    eval
}

#[test]
fn logistic_recovers_the_planted_labels() {
    cv_accuracy::<LogisticRegression>(0.95);
}

#[test]
fn svm_recovers_the_planted_labels() {
    cv_accuracy::<LinearSvm>(0.95);
}

#[test]
fn naive_bayes_recovers_the_planted_labels() {
    cv_accuracy::<NaiveBayes>(0.9);
}

#[test]
fn trust_readout_ranks_the_perfect_witness_first() {
    // Source 0 is the designed trust-1.0 full-coverage witness; its
    // agreement with any accurate model must beat both noisy extras.
    let eval = cv_accuracy::<LogisticRegression>(0.95);
    let trust: Vec<f64> = eval.trust.iter().map(|t| t.expect("all sources vote")).collect();
    assert_eq!(trust.len(), 3);
    assert!(
        trust[0] > trust[1] && trust[0] > trust[2],
        "witness trust {:.3} should exceed noisy sources {:.3}/{:.3}",
        trust[0],
        trust[1],
        trust[2]
    );
    assert!(trust[0] > 0.9, "witness agreement {:.3} should be near-perfect", trust[0]);
}

#[test]
fn classifiers_are_deterministic_per_seed() {
    let (ds, facts) = separable_world();
    let a = evaluate_on_golden::<LogisticRegression>(&ds, &facts, 10, SEED).unwrap();
    let b = evaluate_on_golden::<LogisticRegression>(&ds, &facts, 10, SEED).unwrap();
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.confusion, b.confusion);
}
