//! Properties of the stratified k-fold splitter: the folds must be an
//! exhaustive, disjoint partition of the instances, keep the class balance
//! per fold, and be reproducible per seed.

use corroborate_ml::kfold::{cross_validate, stratified_folds};
use corroborate_ml::logistic::LogisticRegression;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_split() -> impl Strategy<Value = (Vec<f64>, usize, u64)> {
    (vec(any::<bool>(), 10..=60), 2usize..=5, any::<u64>()).prop_map(|(bits, k, seed)| {
        let labels = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        (labels, k, seed)
    })
}

proptest! {
    #[test]
    fn folds_partition_the_instances((labels, k, seed) in arb_split()) {
        let folds = stratified_folds(&labels, k, seed).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; labels.len()];
        for fold in &folds {
            for &i in fold {
                prop_assert!(i < labels.len(), "index {i} out of range");
                prop_assert!(!seen[i], "index {i} appears in two folds");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some instance is in no fold");
    }

    #[test]
    fn folds_keep_the_class_balance((labels, k, seed) in arb_split()) {
        // Round-robin stratification: each fold's count of either class is
        // within one of every other fold's.
        let folds = stratified_folds(&labels, k, seed).unwrap();
        for positive in [true, false] {
            let counts: Vec<usize> = folds
                .iter()
                .map(|fold| {
                    fold.iter().filter(|&&i| (labels[i] > 0.0) == positive).count()
                })
                .collect();
            let (min, max) =
                (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            prop_assert!(
                max - min <= 1,
                "class {positive}: fold counts {counts:?} differ by more than 1"
            );
        }
    }

    #[test]
    fn folds_are_deterministic_per_seed((labels, k, seed) in arb_split()) {
        let a = stratified_folds(&labels, k, seed).unwrap();
        let b = stratified_folds(&labels, k, seed).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn splitter_rejects_degenerate_requests() {
    let labels = vec![1.0, -1.0, 1.0];
    assert!(stratified_folds(&labels, 1, 0).is_err(), "k < 2 must fail");
    assert!(stratified_folds(&labels, 4, 0).is_err(), "k > n must fail");
}

#[test]
fn cross_validate_rejects_mismatched_inputs() {
    let x = vec![vec![1.0], vec![-1.0]];
    let y = vec![1.0];
    assert!(cross_validate::<LogisticRegression>(&x, &y, 2, 0).is_err());
}
