//! L2-regularised logistic regression trained by batch gradient descent —
//! the paper's `ML-Logistic` baseline (Weka's `Logistic` with default
//! parameters, §6.1.1), re-implemented from scratch.

use corroborate_core::error::CoreError;

/// Configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Learning rate of the gradient steps.
    pub learning_rate: f64,
    /// L2 regularisation strength (Weka's default ridge is 1e-8).
    pub l2: f64,
    /// Number of full-batch gradient epochs.
    pub epochs: usize,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { learning_rate: 0.5, l2: 1e-8, epochs: 500 }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Trains on rows `x` with `±1` labels `y`.
    ///
    /// # Errors
    /// [`CoreError::LengthMismatch`] / [`CoreError::EmptyInput`] on
    /// malformed training data, [`CoreError::InvalidConfig`] on a bad
    /// configuration.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &LogisticConfig) -> Result<Self, CoreError> {
        if x.len() != y.len() {
            return Err(CoreError::LengthMismatch {
                what: "features vs labels",
                expected: y.len(),
                actual: x.len(),
            });
        }
        if x.is_empty() {
            return Err(CoreError::EmptyInput { what: "training set" });
        }
        let lr_bad = config.learning_rate.is_nan() || config.learning_rate <= 0.0;
        let l2_bad = config.l2.is_nan() || config.l2 < 0.0;
        if lr_bad || config.epochs == 0 || l2_bad {
            return Err(CoreError::InvalidConfig {
                message: "learning_rate > 0, l2 ≥ 0 and epochs ≥ 1 required".into(),
            });
        }
        let n_features = x[0].len();
        if let Some(bad) = x.iter().find(|r| r.len() != n_features) {
            return Err(CoreError::LengthMismatch {
                what: "feature row width",
                expected: n_features,
                actual: bad.len(),
            });
        }
        let n = x.len() as f64;
        let mut weights = vec![0.0; n_features];
        let mut bias = 0.0;
        let mut grad = vec![0.0; n_features];
        for _ in 0..config.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_bias = 0.0;
            for (row, &label) in x.iter().zip(y) {
                let z: f64 = bias + row.iter().zip(&weights).map(|(a, b)| a * b).sum::<f64>();
                // y ∈ {−1, +1}: residual of P(y=+1).
                let target = if label > 0.0 { 1.0 } else { 0.0 };
                let err = sigmoid(z) - target;
                for (g, &xi) in grad.iter_mut().zip(row) {
                    *g += err * xi;
                }
                grad_bias += err;
            }
            for (wi, g) in weights.iter_mut().zip(&grad) {
                *wi -= config.learning_rate * (g / n + config.l2 * *wi);
            }
            bias -= config.learning_rate * grad_bias / n;
        }
        Ok(Self { weights, bias })
    }

    /// Probability that the row's label is `+1`.
    pub fn predict_probability(&self, row: &[f64]) -> f64 {
        let z: f64 = self.bias + row.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>();
        sigmoid(z)
    }

    /// Hard `±1` prediction.
    pub fn predict(&self, row: &[f64]) -> f64 {
        if self.predict_probability(row) >= 0.5 {
            1.0
        } else {
            -1.0
        }
    }

    /// The learned weights (for inspecting feature importance, as the
    /// paper does when noting "the most discriminating features are the F
    /// votes").
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_free_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        // Linearly separable: label = sign of first feature.
        let x = vec![
            vec![1.0, 0.3],
            vec![0.8, -0.6],
            vec![-0.9, 0.2],
            vec![-1.0, -0.8],
            vec![0.7, 0.9],
            vec![-0.6, 0.5],
        ];
        let y = vec![1.0, 1.0, -1.0, -1.0, 1.0, -1.0];
        (x, y)
    }

    #[test]
    fn learns_a_separable_problem() {
        let (x, y) = xor_free_problem();
        let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(model.predict(row), label);
        }
        assert!(model.weights()[0] > 0.0);
    }

    #[test]
    fn probabilities_are_calibrated_ends() {
        let (x, y) = xor_free_problem();
        let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert!(model.predict_probability(&[3.0, 0.0]) > 0.9);
        assert!(model.predict_probability(&[-3.0, 0.0]) < 0.1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(LogisticRegression::fit(&[], &[], &LogisticConfig::default()).is_err());
        assert!(LogisticRegression::fit(&[vec![1.0]], &[1.0, -1.0], &LogisticConfig::default())
            .is_err());
        assert!(LogisticRegression::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[1.0, -1.0],
            &LogisticConfig::default()
        )
        .is_err());
        let bad = LogisticConfig { epochs: 0, ..Default::default() };
        assert!(LogisticRegression::fit(&[vec![1.0]], &[1.0], &bad).is_err());
    }

    #[test]
    fn strong_l2_shrinks_weights() {
        let (x, y) = xor_free_problem();
        let free = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        let ridge =
            LogisticRegression::fit(&x, &y, &LogisticConfig { l2: 1.0, ..Default::default() })
                .unwrap();
        assert!(ridge.weights()[0].abs() < free.weights()[0].abs());
    }
}
