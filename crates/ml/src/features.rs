//! Vote featurisation for the machine-learning baselines (§6.1.1): each
//! fact becomes a fixed-length vector with a one-hot encoding of every
//! source's vote — `T`, `F` or *missing*.
//!
//! The paper's analysis (§6.2.2) found that ML models beat the
//! corroboration baselines largely because the *missing* indicator carries
//! signal ("a missing vote could be seen as either an F vote or that a
//! source has no knowledge"); encoding absence explicitly is therefore
//! essential.

use corroborate_core::prelude::*;

/// Number of features emitted per source (`T` / `F` / missing one-hot).
pub const FEATURES_PER_SOURCE: usize = 3;

/// A dense design matrix with one row per fact.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    n_features: usize,
    rows: Vec<Vec<f64>>,
}

impl FeatureMatrix {
    /// Number of rows (facts).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature row of `fact`.
    pub fn row(&self, fact: FactId) -> &[f64] {
        &self.rows[fact.index()]
    }

    /// All rows, indexed by fact id.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

/// Builds the one-hot vote features for every fact of `dataset`.
pub fn vote_features(dataset: &Dataset) -> FeatureMatrix {
    let n_features = dataset.n_sources() * FEATURES_PER_SOURCE;
    let mut rows = Vec::with_capacity(dataset.n_facts());
    for f in dataset.facts() {
        let mut row = vec![0.0; n_features];
        // Default: every source missing.
        for s in 0..dataset.n_sources() {
            row[s * FEATURES_PER_SOURCE + 2] = 1.0;
        }
        for sv in dataset.votes().votes_on(f) {
            let base = sv.source.index() * FEATURES_PER_SOURCE;
            row[base + 2] = 0.0;
            match sv.vote {
                Vote::True => row[base] = 1.0,
                Vote::False => row[base + 1] = 1.0,
            }
        }
        rows.push(row);
    }
    FeatureMatrix { n_features, rows }
}

/// Extracts `±1` labels (true → `+1`) for the given facts from the ground
/// truth; used to train the classifiers on a golden subset.
pub fn signed_labels(truth: &TruthAssignment, facts: &[FactId]) -> Vec<f64> {
    facts.iter().map(|&f| if truth.label(f).as_bool() { 1.0 } else { -1.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s0 = b.add_source("a");
        let s1 = b.add_source("b");
        let f0 = b.add_fact_with_truth("f0", Label::True);
        let f1 = b.add_fact_with_truth("f1", Label::False);
        b.cast(s0, f0, Vote::True).unwrap();
        b.cast(s1, f0, Vote::False).unwrap();
        b.cast(s0, f1, Vote::True).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn one_hot_encoding_is_exact() {
        let ds = tiny();
        let m = vote_features(&ds);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_features(), 6);
        // f0: s0 = T → (1,0,0); s1 = F → (0,1,0).
        assert_eq!(m.row(FactId::new(0)), &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        // f1: s0 = T; s1 missing → (0,0,1).
        assert_eq!(m.row(FactId::new(1)), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn each_source_block_sums_to_one() {
        let ds = tiny();
        let m = vote_features(&ds);
        for row in m.rows() {
            for s in 0..2 {
                let sum: f64 = row[s * 3..(s + 1) * 3].iter().sum();
                assert_eq!(sum, 1.0);
            }
        }
    }

    #[test]
    fn signed_labels_map_polarity() {
        let ds = tiny();
        let labels = signed_labels(ds.ground_truth().unwrap(), &[FactId::new(0), FactId::new(1)]);
        assert_eq!(labels, vec![1.0, -1.0]);
    }
}
