//! Bernoulli naive Bayes — a third ML baseline beyond the paper's two
//! Weka classifiers. On one-hot vote features it amounts to learning, per
//! source, `P(vote | listing open)` and `P(vote | listing closed)` and
//! multiplying the evidence — i.e. exactly the generative counterpart of
//! the corroboration methods, which makes it a natural calibration point
//! between them and the discriminative models.

use corroborate_core::error::CoreError;

/// Configuration for [`NaiveBayes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveBayesConfig {
    /// Laplace smoothing pseudo-count added to every feature/class cell.
    pub smoothing: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        Self { smoothing: 1.0 }
    }
}

/// A trained Bernoulli naive Bayes model over binary (0/1) features.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// `log P(x_j = 1 | class)` per class (0 = negative, 1 = positive).
    log_on: [Vec<f64>; 2],
    /// `log P(x_j = 0 | class)`.
    log_off: [Vec<f64>; 2],
    /// `log P(class)`.
    log_prior: [f64; 2],
}

impl NaiveBayes {
    /// Trains on rows `x` (features in `[0, 1]`, treated as Bernoulli with
    /// anything `> 0.5` counting as on) with `±1` labels `y`.
    ///
    /// # Errors
    /// The usual malformed-input errors; additionally requires at least
    /// one example of each class (a single-class "model" is a constant and
    /// almost always a training-set bug).
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &NaiveBayesConfig) -> Result<Self, CoreError> {
        if x.len() != y.len() {
            return Err(CoreError::LengthMismatch {
                what: "features vs labels",
                expected: y.len(),
                actual: x.len(),
            });
        }
        if x.is_empty() {
            return Err(CoreError::EmptyInput { what: "training set" });
        }
        if config.smoothing.is_nan() || config.smoothing <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("smoothing must be positive, got {}", config.smoothing),
            });
        }
        let n_features = x[0].len();
        if let Some(bad) = x.iter().find(|r| r.len() != n_features) {
            return Err(CoreError::LengthMismatch {
                what: "feature row width",
                expected: n_features,
                actual: bad.len(),
            });
        }
        let mut class_count = [0.0f64; 2];
        let mut on_count = [vec![0.0f64; n_features], vec![0.0f64; n_features]];
        for (row, &label) in x.iter().zip(y) {
            let c = usize::from(label > 0.0);
            class_count[c] += 1.0;
            for (j, &v) in row.iter().enumerate() {
                if v > 0.5 {
                    on_count[c][j] += 1.0;
                }
            }
        }
        if class_count[0] == 0.0 || class_count[1] == 0.0 {
            return Err(CoreError::InvalidConfig {
                message: "training set must contain both classes".into(),
            });
        }
        let s = config.smoothing;
        let total = class_count[0] + class_count[1];
        let mut log_on = [vec![0.0; n_features], vec![0.0; n_features]];
        let mut log_off = [vec![0.0; n_features], vec![0.0; n_features]];
        for c in 0..2 {
            for j in 0..n_features {
                let p_on = (on_count[c][j] + s) / (class_count[c] + 2.0 * s);
                log_on[c][j] = p_on.ln();
                log_off[c][j] = (1.0 - p_on).ln();
            }
        }
        Ok(Self {
            log_on,
            log_off,
            log_prior: [(class_count[0] / total).ln(), (class_count[1] / total).ln()],
        })
    }

    /// Posterior probability that the row's label is `+1`.
    pub fn predict_probability(&self, row: &[f64]) -> f64 {
        let mut log_score = [self.log_prior[0], self.log_prior[1]];
        for (c, score) in log_score.iter_mut().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                *score += if v > 0.5 { self.log_on[c][j] } else { self.log_off[c][j] };
            }
        }
        1.0 / (1.0 + (log_score[0] - log_score[1]).exp())
    }

    /// Hard `±1` prediction.
    pub fn predict(&self, row: &[f64]) -> f64 {
        if self.predict_probability(row) >= 0.5 {
            1.0
        } else {
            -1.0
        }
    }
}

impl crate::kfold::Classifier for NaiveBayes {
    fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, CoreError> {
        Self::fit(x, y, &NaiveBayesConfig::default())
    }
    fn predict(&self, row: &[f64]) -> f64 {
        self.predict(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One feature perfectly predicts the class; a second is noise.
    fn marker_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let pos = i % 2 == 0;
            x.push(vec![f64::from(u8::from(pos)), f64::from(u8::from(i % 3 == 0))]);
            y.push(if pos { 1.0 } else { -1.0 });
        }
        (x, y)
    }

    #[test]
    fn learns_a_marker_feature() {
        let (x, y) = marker_problem();
        let model = NaiveBayes::fit(&x, &y, &NaiveBayesConfig::default()).unwrap();
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(model.predict(row), label, "{row:?}");
        }
        assert!(model.predict_probability(&[1.0, 0.0]) > 0.9);
        assert!(model.predict_probability(&[0.0, 0.0]) < 0.1);
    }

    #[test]
    fn smoothing_prevents_zero_probabilities() {
        // A feature never seen "on" in the negative class must not give
        // −∞ log-likelihood at prediction time.
        let x = vec![vec![1.0], vec![1.0], vec![0.0], vec![0.0]];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let model = NaiveBayes::fit(&x, &y, &NaiveBayesConfig::default()).unwrap();
        let p = model.predict_probability(&[1.0]);
        assert!(p > 0.5 && p < 1.0, "p = {p}");
    }

    #[test]
    fn rejects_single_class_and_bad_config() {
        let x = vec![vec![1.0], vec![0.0]];
        assert!(NaiveBayes::fit(&x, &[1.0, 1.0], &NaiveBayesConfig::default()).is_err());
        assert!(NaiveBayes::fit(&x, &[1.0, -1.0], &NaiveBayesConfig { smoothing: 0.0 }).is_err());
        assert!(NaiveBayes::fit(&[], &[], &NaiveBayesConfig::default()).is_err());
        assert!(NaiveBayes::fit(&x, &[1.0], &NaiveBayesConfig::default()).is_err());
    }

    #[test]
    fn works_through_the_cv_driver() {
        use crate::kfold::cross_validate;
        let (x, y) = marker_problem();
        let preds = cross_validate::<NaiveBayes>(&x, &y, 5, 1).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        assert_eq!(correct, y.len());
    }
}
