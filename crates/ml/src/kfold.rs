//! Stratified k-fold cross-validation (the paper evaluates its ML
//! baselines with 10-fold CV, §6.1.1).

use corroborate_core::error::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A classifier trainable on `±1` labels — implemented by the logistic
/// regression and the SMO SVM so the CV driver can treat them uniformly.
pub trait Classifier: Sized {
    /// Trains a model.
    fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, CoreError>;
    /// Predicts `±1` for one row.
    fn predict(&self, row: &[f64]) -> f64;
}

impl Classifier for crate::logistic::LogisticRegression {
    fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, CoreError> {
        Self::fit(x, y, &crate::logistic::LogisticConfig::default())
    }
    fn predict(&self, row: &[f64]) -> f64 {
        self.predict(row)
    }
}

impl Classifier for crate::svm::LinearSvm {
    fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, CoreError> {
        Self::fit(x, y, &crate::svm::SvmConfig::default())
    }
    fn predict(&self, row: &[f64]) -> f64 {
        self.predict(row)
    }
}

/// Splits `0..labels.len()` into `k` folds, stratified so each fold keeps
/// the global class balance. Deterministic given the seed.
///
/// # Errors
/// [`CoreError::InvalidConfig`] when `k < 2` or there are fewer instances
/// than folds.
pub fn stratified_folds(labels: &[f64], k: usize, seed: u64) -> Result<Vec<Vec<usize>>, CoreError> {
    if k < 2 {
        return Err(CoreError::InvalidConfig { message: "need at least 2 folds".into() });
    }
    if labels.len() < k {
        return Err(CoreError::InvalidConfig {
            message: format!("{} instances cannot fill {k} folds", labels.len()),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positives: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] > 0.0).collect();
    let mut negatives: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] <= 0.0).collect();
    for pool in [&mut positives, &mut negatives] {
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
    }
    let mut folds = vec![Vec::new(); k];
    for (pos, &idx) in positives.iter().chain(&negatives).enumerate() {
        folds[pos % k].push(idx);
    }
    Ok(folds)
}

/// Runs k-fold cross-validation: trains on `k−1` folds, predicts the held
/// one, and returns the out-of-fold prediction (`±1`) for every instance.
///
/// # Errors
/// Propagates fold-construction and training errors.
pub fn cross_validate<C: Classifier>(
    x: &[Vec<f64>],
    y: &[f64],
    k: usize,
    seed: u64,
) -> Result<Vec<f64>, CoreError> {
    if x.len() != y.len() {
        return Err(CoreError::LengthMismatch {
            what: "features vs labels",
            expected: y.len(),
            actual: x.len(),
        });
    }
    let folds = stratified_folds(y, k, seed)?;
    let mut predictions = vec![0.0; y.len()];
    for held in &folds {
        let held_set: std::collections::HashSet<usize> = held.iter().copied().collect();
        let mut train_x = Vec::with_capacity(x.len() - held.len());
        let mut train_y = Vec::with_capacity(x.len() - held.len());
        for i in 0..x.len() {
            if !held_set.contains(&i) {
                train_x.push(x[i].clone());
                train_y.push(y[i]);
            }
        }
        let model = C::fit(&train_x, &train_y)?;
        for &i in held {
            predictions[i] = model.predict(&x[i]);
        }
    }
    Ok(predictions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::svm::LinearSvm;

    #[test]
    fn folds_partition_and_stratify() {
        let labels: Vec<f64> = (0..100).map(|i| if i < 60 { 1.0 } else { -1.0 }).collect();
        let folds = stratified_folds(&labels, 10, 1).unwrap();
        assert_eq!(folds.len(), 10);
        let mut seen = [false; 100];
        for fold in &folds {
            assert_eq!(fold.len(), 10);
            let pos = fold.iter().filter(|&&i| labels[i] > 0.0).count();
            assert_eq!(pos, 6, "stratification preserved per fold");
            for &i in fold {
                assert!(!seen[i], "index {i} in two folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let labels = vec![1.0; 20];
        assert_eq!(
            stratified_folds(&labels, 4, 9).unwrap(),
            stratified_folds(&labels, 4, 9).unwrap()
        );
        assert_ne!(
            stratified_folds(&labels, 4, 9).unwrap(),
            stratified_folds(&labels, 4, 10).unwrap()
        );
    }

    #[test]
    fn rejects_degenerate_folds() {
        assert!(stratified_folds(&[1.0, 1.0], 1, 0).is_err());
        assert!(stratified_folds(&[1.0], 2, 0).is_err());
    }

    fn linear_problem(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // label = sign(x0 − x1), noiseless.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 7) as f64 / 3.0 - 1.0;
            let b = (i % 5) as f64 / 2.0 - 1.0;
            if (a - b).abs() < 0.2 {
                continue;
            }
            x.push(vec![a, b]);
            y.push(if a > b { 1.0 } else { -1.0 });
        }
        (x, y)
    }

    #[test]
    fn cross_validation_recovers_a_learnable_concept() {
        let (x, y) = linear_problem(120);
        for preds in [
            cross_validate::<LogisticRegression>(&x, &y, 10, 3).unwrap(),
            cross_validate::<LinearSvm>(&x, &y, 10, 3).unwrap(),
        ] {
            let correct = preds.iter().zip(&y).filter(|(p, l)| p == l).count();
            assert!(correct as f64 / y.len() as f64 > 0.9, "{correct}/{} correct", y.len());
        }
    }

    #[test]
    fn cross_validate_checks_lengths() {
        let e = cross_validate::<LogisticRegression>(&[vec![1.0]], &[1.0, -1.0], 2, 0);
        assert!(e.is_err());
    }
}
