//! # corroborate-ml
//!
//! From-scratch machine-learning baselines for the `corroborate`
//! workspace, replacing the Weka classifiers the paper uses (§6.1.1):
//!
//! - [`logistic`] — L2-regularised logistic regression (`ML-Logistic`);
//! - [`svm`] — a linear SVM trained by simplified SMO (`ML-SVM (SMO)`);
//! - [`naive_bayes`] — Bernoulli naive Bayes (a third baseline beyond the
//!   paper's two, the generative counterpart of the corroborators);
//! - [`features`] — one-hot vote featurisation (`T` / `F` / *missing*
//!   per source; the missing indicator is the signal the paper credits
//!   the ML models' edge to);
//! - [`kfold`] — stratified k-fold cross-validation (the paper uses
//!   10-fold);
//! - [`eval`] — the §6.1.1 evaluation protocol: CV over the golden set,
//!   reporting Table 4 quality and Table 5 trust estimates.
//!
//! ```
//! use corroborate_core::prelude::*;
//! use corroborate_ml::eval::evaluate_on_golden;
//! use corroborate_ml::logistic::LogisticRegression;
//!
//! let mut b = DatasetBuilder::new();
//! let s = b.add_source("src");
//! let mut golden = Vec::new();
//! for i in 0..20 {
//!     let truth = i % 2 == 0;
//!     let f = b.add_fact_with_truth(format!("f{i}"), Label::from_bool(truth));
//!     if truth { b.cast(s, f, Vote::True).unwrap(); }
//!     else { b.cast(s, f, Vote::False).unwrap(); }
//!     golden.push(f);
//! }
//! let ds = b.build().unwrap();
//! let eval = evaluate_on_golden::<LogisticRegression>(&ds, &golden, 5, 1).unwrap();
//! assert!(eval.confusion.accuracy() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod eval;
pub mod features;
pub mod kfold;
pub mod logistic;
pub mod naive_bayes;
pub mod svm;
