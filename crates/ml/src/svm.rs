//! Linear support-vector machine trained by SMO (sequential minimal
//! optimisation) — the paper's `ML-SVM (SMO)` baseline (Weka's `SMO`
//! implementation, §6.1.1), re-implemented from scratch.
//!
//! This is the simplified SMO variant: sweep the examples, and for each
//! one violating the KKT conditions pick a random partner and solve the
//! two-variable subproblem analytically. The kernel is linear, so the
//! primal weight vector is maintained incrementally and prediction is a
//! dot product.

use corroborate_core::error::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Box constraint `C` (Weka's default is 1.0).
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Stop after this many full passes without an update.
    pub max_quiet_passes: usize,
    /// Hard cap on total passes.
    pub max_passes: usize,
    /// RNG seed for the partner choice.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { c: 1.0, tolerance: 1e-3, max_quiet_passes: 5, max_passes: 200, seed: 7 }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains on rows `x` with `±1` labels `y` using simplified SMO.
    ///
    /// # Errors
    /// [`CoreError::LengthMismatch`] / [`CoreError::EmptyInput`] on
    /// malformed data, [`CoreError::InvalidConfig`] on a bad config.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &SvmConfig) -> Result<Self, CoreError> {
        if x.len() != y.len() {
            return Err(CoreError::LengthMismatch {
                what: "features vs labels",
                expected: y.len(),
                actual: x.len(),
            });
        }
        if x.is_empty() {
            return Err(CoreError::EmptyInput { what: "training set" });
        }
        let c_bad = config.c.is_nan() || config.c <= 0.0;
        let tol_bad = config.tolerance.is_nan() || config.tolerance <= 0.0;
        if c_bad || tol_bad || config.max_passes == 0 {
            return Err(CoreError::InvalidConfig {
                message: "C > 0, tolerance > 0 and max_passes ≥ 1 required".into(),
            });
        }
        let n = x.len();
        let n_features = x[0].len();
        if let Some(bad) = x.iter().find(|r| r.len() != n_features) {
            return Err(CoreError::LengthMismatch {
                what: "feature row width",
                expected: n_features,
                actual: bad.len(),
            });
        }
        if y.iter().any(|&l| l != 1.0 && l != -1.0) {
            return Err(CoreError::InvalidConfig { message: "labels must be ±1".into() });
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(p, q)| p * q).sum() };
        let mut alpha = vec![0.0f64; n];
        let mut weights = vec![0.0f64; n_features];
        let mut bias = 0.0f64;
        // f(x_i) under the current (w, b).
        let f = |weights: &[f64], bias: f64, row: &[f64]| -> f64 { dot(weights, row) + bias };

        let mut quiet = 0;
        let mut passes = 0;
        while quiet < config.max_quiet_passes && passes < config.max_passes {
            passes += 1;
            let mut changed = 0;
            for i in 0..n {
                let e_i = f(&weights, bias, &x[i]) - y[i];
                let r = e_i * y[i];
                let violates = (r < -config.tolerance && alpha[i] < config.c)
                    || (r > config.tolerance && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Random partner j ≠ i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&weights, bias, &x[j]) - y[j];
                let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    ((a_j_old - a_i_old).max(0.0), (config.c + a_j_old - a_i_old).min(config.c))
                } else {
                    ((a_i_old + a_j_old - config.c).max(0.0), (a_i_old + a_j_old).min(config.c))
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let k_ii = dot(&x[i], &x[i]);
                let k_jj = dot(&x[j], &x[j]);
                let k_ij = dot(&x[i], &x[j]);
                let eta = 2.0 * k_ij - k_ii - k_jj;
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-5 {
                    continue;
                }
                let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                // Bias updates (Platt's b1/b2 rule).
                let b1 = bias - e_i - y[i] * (a_i - a_i_old) * k_ii - y[j] * (a_j - a_j_old) * k_ij;
                let b2 = bias - e_j - y[i] * (a_i - a_i_old) * k_ij - y[j] * (a_j - a_j_old) * k_jj;
                bias = if 0.0 < a_i && a_i < config.c {
                    b1
                } else if 0.0 < a_j && a_j < config.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                // Incremental primal weights (linear kernel only).
                for (k, wk) in weights.iter_mut().enumerate() {
                    *wk += y[i] * (a_i - a_i_old) * x[i][k] + y[j] * (a_j - a_j_old) * x[j][k];
                }
                alpha[i] = a_i;
                alpha[j] = a_j;
                changed += 1;
            }
            if changed == 0 {
                quiet += 1;
            } else {
                quiet = 0;
            }
        }

        Ok(Self { weights, bias })
    }

    /// Signed decision value `w·x + b`.
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.bias + row.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Hard `±1` prediction.
    pub fn predict(&self, row: &[f64]) -> f64 {
        if self.decision(row) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The primal weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x = vec![
            vec![2.0, 1.0],
            vec![1.5, -0.5],
            vec![2.5, 0.2],
            vec![-2.0, 0.4],
            vec![-1.2, -1.0],
            vec![-2.4, 1.1],
        ];
        let y = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        (x, y)
    }

    #[test]
    fn separates_a_separable_problem() {
        let (x, y) = separable();
        let model = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(model.predict(row), label, "{row:?}");
        }
    }

    #[test]
    fn margin_has_the_right_orientation() {
        let (x, y) = separable();
        let model = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        assert!(model.weights()[0] > 0.0);
        assert!(model.decision(&[5.0, 0.0]) > model.decision(&[0.5, 0.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = separable();
        let a = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        let b = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn tolerates_label_noise_with_soft_margin() {
        let (mut x, mut y) = separable();
        // One mislabelled point.
        x.push(vec![2.2, 0.0]);
        y.push(-1.0);
        let model = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        // The clean majority still classifies correctly.
        let correct =
            x[..6].iter().zip(&y[..6]).filter(|(row, l)| model.predict(row) == **l).count();
        assert!(correct >= 5, "correct = {correct}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(LinearSvm::fit(&[], &[], &SvmConfig::default()).is_err());
        assert!(LinearSvm::fit(&[vec![1.0]], &[0.5], &SvmConfig::default()).is_err());
        let bad = SvmConfig { c: 0.0, ..Default::default() };
        assert!(LinearSvm::fit(&[vec![1.0]], &[1.0], &bad).is_err());
    }
}
