//! Evaluation driver for the ML baselines, mirroring §6.1.1: 10-fold
//! cross-validation **over the golden set only** ("they only run over the
//! golden set", §6.2.5), reporting the Table 4 quality metrics and the
//! Table 5 per-source trust estimates.

use corroborate_core::error::CoreError;
use corroborate_core::ids::FactId;
use corroborate_core::metrics::ConfusionMatrix;
use corroborate_core::prelude::*;

use crate::features::{signed_labels, vote_features};
use crate::kfold::{cross_validate, Classifier};

/// Result of evaluating an ML baseline on a golden subset.
#[derive(Debug, Clone)]
pub struct MlEvaluation {
    /// Out-of-fold `±1` prediction per golden fact (parallel to the
    /// golden slice passed in).
    pub predictions: Vec<f64>,
    /// Confusion matrix over the golden subset.
    pub confusion: ConfusionMatrix,
    /// Per-source trust estimate: agreement rate of the source's votes
    /// (on golden facts) with the model's predictions; `None` for sources
    /// silent on the golden set.
    pub trust: Vec<Option<f64>>,
}

/// Runs k-fold CV for classifier `C` on the golden facts of `dataset`.
///
/// # Errors
/// Requires ground truth on the dataset; propagates CV errors.
pub fn evaluate_on_golden<C: Classifier>(
    dataset: &Dataset,
    golden: &[FactId],
    k: usize,
    seed: u64,
) -> Result<MlEvaluation, CoreError> {
    let truth = dataset.require_ground_truth()?;
    let features = vote_features(dataset);
    let x: Vec<Vec<f64>> = golden.iter().map(|&f| features.row(f).to_vec()).collect();
    let y = signed_labels(truth, golden);
    let predictions = cross_validate::<C>(&x, &y, k, seed)?;

    let mut m = ConfusionMatrix::default();
    for (&pred, &label) in predictions.iter().zip(&y) {
        match (pred > 0.0, label > 0.0) {
            (true, true) => m.tp += 1,
            (true, false) => m.fp += 1,
            (false, false) => m.tn += 1,
            (false, true) => m.fn_ += 1,
        }
    }

    // Trust: agreement of each source's golden votes with the predictions.
    let mut predicted_of = std::collections::HashMap::new();
    for (i, &f) in golden.iter().enumerate() {
        predicted_of.insert(f, predictions[i] > 0.0);
    }
    let trust = dataset
        .sources()
        .map(|s| {
            let mut agree = 0usize;
            let mut total = 0usize;
            for fv in dataset.votes().votes_by(s) {
                if let Some(&pred) = predicted_of.get(&fv.fact) {
                    total += 1;
                    if fv.vote.as_bool() == pred {
                        agree += 1;
                    }
                }
            }
            if total == 0 {
                None
            } else {
                Some(agree as f64 / total as f64)
            }
        })
        .collect();

    Ok(MlEvaluation { predictions, confusion: m, trust })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::svm::LinearSvm;

    /// A dataset where one source's F vote perfectly marks false facts —
    /// the pattern the paper says ML models exploit.
    fn marked_world() -> (Dataset, Vec<FactId>) {
        let mut b = DatasetBuilder::new();
        let noisy = b.add_source("noisy");
        let marker = b.add_source("marker");
        let mut golden = Vec::new();
        for i in 0..120 {
            let truth = i % 3 != 0;
            let f = b.add_fact_with_truth(format!("f{i}"), Label::from_bool(truth));
            b.cast(noisy, f, Vote::True).unwrap();
            if !truth {
                b.cast(marker, f, Vote::False).unwrap();
            } else if i % 2 == 0 {
                b.cast(marker, f, Vote::True).unwrap();
            }
            golden.push(f);
        }
        (b.build().unwrap(), golden)
    }

    #[test]
    fn both_classifiers_learn_the_f_vote_signal() {
        let (ds, golden) = marked_world();
        let logit = evaluate_on_golden::<LogisticRegression>(&ds, &golden, 10, 1).unwrap();
        let svm = evaluate_on_golden::<LinearSvm>(&ds, &golden, 10, 1).unwrap();
        assert!(logit.confusion.accuracy() > 0.95, "{:?}", logit.confusion);
        assert!(svm.confusion.accuracy() > 0.95, "{:?}", svm.confusion);
    }

    #[test]
    fn trust_reflects_source_quality() {
        let (ds, golden) = marked_world();
        let eval = evaluate_on_golden::<LogisticRegression>(&ds, &golden, 10, 1).unwrap();
        let noisy = eval.trust[0].unwrap();
        let marker = eval.trust[1].unwrap();
        assert!(marker > noisy, "marker {marker} vs noisy {noisy}");
        assert!(marker > 0.9);
    }

    #[test]
    fn requires_ground_truth() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("unlabelled");
        let ds = b.build().unwrap();
        let e = evaluate_on_golden::<LogisticRegression>(&ds, &[FactId::new(0)], 2, 0);
        assert!(e.is_err());
    }
}
