//! Property tests over the evaluation metrics: algebraic identities that
//! must hold for every prediction/truth pair, not just the hand-picked
//! examples in the unit suite.

use corroborate_core::metrics::{brier_score, ConfusionMatrix};
use corroborate_core::truth::TruthAssignment;
use proptest::collection::vec;
use proptest::prelude::*;

/// A prediction and a ground truth over the same 1–64 facts.
fn arb_pair() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
    (1usize..=64).prop_flat_map(|n| (vec(any::<bool>(), n..=n), vec(any::<bool>(), n..=n)))
}

fn matrix(pred: &[bool], truth: &[bool]) -> ConfusionMatrix {
    ConfusionMatrix::from_assignments(
        &TruthAssignment::from_bools(pred),
        &TruthAssignment::from_bools(truth),
    )
    .expect("equal lengths")
}

proptest! {
    #[test]
    fn confusion_cells_partition_the_facts((pred, truth) in arb_pair()) {
        let m = matrix(&pred, &truth);
        prop_assert_eq!(m.tp + m.fp + m.tn + m.fn_, pred.len());
        prop_assert_eq!(m.total(), pred.len());
        prop_assert_eq!(m.errors(), m.fp + m.fn_);
    }

    #[test]
    fn f1_is_the_harmonic_mean_of_precision_and_recall((pred, truth) in arb_pair()) {
        let m = matrix(&pred, &truth);
        let (p, r) = (m.precision(), m.recall());
        let expected = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
        prop_assert!((m.f1() - expected).abs() < 1e-12);
        // All four headline metrics live in [0, 1].
        for x in [p, r, m.accuracy(), m.f1()] {
            prop_assert!((0.0..=1.0).contains(&x), "metric {x} out of range");
        }
    }

    #[test]
    fn accuracy_survives_relabeling_the_facts(
        (pred, truth) in arb_pair(),
        seed in any::<u64>(),
    ) {
        // Shuffle prediction and truth with the same permutation: every
        // (p, t) pair survives, so the whole matrix is unchanged.
        let n = pred.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            // SplitMix64 step — any deterministic scramble works here.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let shuffled_pred: Vec<bool> = perm.iter().map(|&i| pred[i]).collect();
        let shuffled_truth: Vec<bool> = perm.iter().map(|&i| truth[i]).collect();
        prop_assert_eq!(matrix(&pred, &truth), matrix(&shuffled_pred, &shuffled_truth));
    }

    #[test]
    fn polarity_flip_transposes_the_matrix((pred, truth) in arb_pair()) {
        // Negating both prediction and truth swaps the positive class:
        // tp↔tn and fp↔fn, so accuracy is invariant while precision and
        // recall trade places with their negative-class counterparts.
        let m = matrix(&pred, &truth);
        let not = |bits: &[bool]| bits.iter().map(|b| !b).collect::<Vec<_>>();
        let flipped = matrix(&not(&pred), &not(&truth));
        prop_assert_eq!((m.tp, m.fp, m.tn, m.fn_), (flipped.tn, flipped.fn_, flipped.tp, flipped.fp));
        prop_assert!((m.accuracy() - flipped.accuracy()).abs() < 1e-15);
    }

    #[test]
    fn brier_score_is_bounded_and_zero_only_when_perfect(truth_bits in vec(any::<bool>(), 1..=32)) {
        let truth = TruthAssignment::from_bools(&truth_bits);
        let perfect: Vec<f64> =
            truth_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        prop_assert_eq!(brier_score(&perfect, &truth).unwrap(), 0.0);
        let coin = vec![0.5; truth_bits.len()];
        prop_assert!((brier_score(&coin, &truth).unwrap() - 0.25).abs() < 1e-12);
        let inverted: Vec<f64> = perfect.iter().map(|p| 1.0 - p).collect();
        prop_assert_eq!(brier_score(&inverted, &truth).unwrap(), 1.0);
    }
}
