//! Round-trip tests for the CSV interchange: parse→serialize must be a
//! fixpoint, and serialize→parse must preserve the dataset up to id
//! renumbering (names are the stable keys, not ids).

use std::collections::{BTreeMap, BTreeSet};

use corroborate_core::io::{
    dataset_from_csv, dataset_from_csv_full, sources_to_csv, truth_to_csv, votes_to_csv,
};
use corroborate_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

/// Name-keyed view of a dataset: vote triples, truth labels, and the
/// source/fact name sets. Two datasets with equal views describe the same
/// corroboration problem no matter how ids are numbered.
#[derive(Debug, PartialEq, Eq)]
struct SemanticView {
    votes: BTreeSet<(String, String, char)>,
    truth: BTreeMap<String, bool>,
    sources: BTreeSet<String>,
    facts: BTreeSet<String>,
}

fn view(ds: &Dataset) -> SemanticView {
    let mut votes = BTreeSet::new();
    for f in ds.facts() {
        for sv in ds.votes().votes_on(f) {
            votes.insert((
                ds.source_name(sv.source).to_string(),
                ds.fact_name(f).to_string(),
                sv.vote.symbol(),
            ));
        }
    }
    let truth = match ds.ground_truth() {
        Some(t) => t.iter().map(|(f, l)| (ds.fact_name(f).to_string(), l.as_bool())).collect(),
        None => BTreeMap::new(),
    };
    SemanticView {
        votes,
        truth,
        sources: ds.sources().map(|s| ds.source_name(s).to_string()).collect(),
        facts: ds.facts().map(|f| ds.fact_name(f).to_string()).collect(),
    }
}

/// serialize→parse→serialize through all three files (votes, truth, and
/// the sources roster); asserts the fixpoint and semantic equality,
/// returning the reparsed dataset for further checks.
fn roundtrip(ds: &Dataset) -> Dataset {
    let votes = votes_to_csv(ds);
    let truth = ds.ground_truth().map(|_| truth_to_csv(ds).unwrap());
    let roster = sources_to_csv(ds);
    let back =
        dataset_from_csv_full(&votes, truth.as_deref(), Some(&roster)).expect("reparse own output");
    assert_eq!(view(ds), view(&back), "semantic content changed across the round trip");
    // With the roster, ids survive too: the roster fixes source numbering
    // and facts reparse in first-appearance order.
    assert_eq!(sources_to_csv(&back), roster, "source roster changed across the round trip");
    // A reparsed dataset serialises to byte-identical CSV: with the roster
    // pinning source numbering, the text form is a fixpoint immediately.
    assert_eq!(
        votes_to_csv(&back),
        votes_to_csv(&dataset_from_csv_full(&votes_to_csv(&back), None, Some(&roster)).unwrap())
    );
    back
}

#[test]
fn gnarly_names_survive_quoting() {
    let mut b = DatasetBuilder::new();
    let s0 = b.add_source("Menu,Pages");
    let s1 = b.add_source("Quote\"In\"Name");
    let s2 = b.add_source("plain");
    let f0 = b.add_fact_with_truth("Danny's \"Grand\" Sea, Palace", Label::True);
    let f1 = b.add_fact_with_truth(",,leading commas", Label::False);
    let f2 = b.add_fact_with_truth("ünïcødé 寿司", Label::True);
    b.cast(s0, f0, Vote::True).unwrap();
    b.cast(s1, f0, Vote::False).unwrap();
    b.cast(s1, f1, Vote::True).unwrap();
    b.cast(s2, f2, Vote::False).unwrap();
    let ds = b.build().unwrap();
    let back = roundtrip(&ds);
    assert_eq!(back.n_sources(), 3);
    assert_eq!(back.n_facts(), 3);
}

#[test]
fn voteless_truth_only_facts_survive_via_the_truth_file() {
    let mut b = DatasetBuilder::new();
    let s = b.add_source("lister");
    let voted = b.add_fact_with_truth("voted", Label::True);
    b.add_fact_with_truth("silent-true", Label::True);
    b.add_fact_with_truth("silent-false", Label::False);
    b.cast(s, voted, Vote::True).unwrap();
    let ds = b.build().unwrap();
    let back = roundtrip(&ds);
    assert_eq!(back.n_facts(), 3);
    let silent = back.facts().find(|&f| back.fact_name(f) == "silent-false").unwrap();
    assert!(back.votes().votes_on(silent).is_empty());
    assert!(!back.ground_truth().unwrap().label(silent).as_bool());
}

#[test]
fn sparse_votes_and_single_sided_facts_round_trip() {
    // One fact with only T votes, one with only F, one contested, and a
    // source that votes exactly once — the shapes a crawl actually has.
    let mut b = DatasetBuilder::new();
    let a = b.add_source("a");
    let c = b.add_source("c");
    let lone = b.add_source("lone");
    let t_only = b.add_fact_with_truth("t-only", Label::True);
    let f_only = b.add_fact_with_truth("f-only", Label::False);
    let contested = b.add_fact_with_truth("contested", Label::True);
    b.cast(a, t_only, Vote::True).unwrap();
    b.cast(c, t_only, Vote::True).unwrap();
    b.cast(a, f_only, Vote::False).unwrap();
    b.cast(a, contested, Vote::True).unwrap();
    b.cast(c, contested, Vote::False).unwrap();
    b.cast(lone, contested, Vote::True).unwrap();
    let ds = b.build().unwrap();
    let back = roundtrip(&ds);
    let f = back.facts().find(|&f| back.fact_name(f) == "contested").unwrap();
    assert_eq!(back.votes().tally(f), (2, 1));
}

#[test]
fn datasets_without_truth_round_trip_votes_alone() {
    let mut b = DatasetBuilder::new();
    let s = b.add_source("s");
    let f = b.add_fact("unlabelled");
    b.cast(s, f, Vote::False).unwrap();
    let ds = b.build().unwrap();
    assert!(truth_to_csv(&ds).is_err());
    let back = dataset_from_csv(&votes_to_csv(&ds), None).unwrap();
    assert_eq!(view(&ds), view(&back));
    assert!(back.ground_truth().is_none());
}

/// Characters the CSV dialect must escape, mixed with ordinary ones.
/// Leading `#` (comment marker) and edge whitespace (trimmed on parse)
/// are documented non-round-trippable and excluded here.
fn arb_name() -> impl Strategy<Value = String> {
    vec(0usize..8, 1..=6).prop_map(|picks| {
        let alphabet = ["x", "y", "z9", ",", "\"", "'", " ", "é"];
        let mut name = String::from("n");
        for p in picks {
            name.push_str(alphabet[p]);
        }
        name.push('.');
        name
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_datasets_round_trip_semantically(
        source_names in vec(arb_name(), 1..=4),
        fact_names in vec(arb_name(), 1..=6),
        votes in vec((any::<u16>(), any::<u16>(), any::<bool>()), 1..=20),
        labels in vec(any::<bool>(), 6),
    ) {
        let mut b = DatasetBuilder::new();
        // Dedup generated names: id-keyed builders allow duplicates but
        // the name-keyed CSV form cannot represent them.
        let sources: Vec<SourceId> = source_names
            .iter()
            .enumerate()
            .map(|(i, n)| b.add_source(format!("{n}-s{i}")))
            .collect();
        let facts: Vec<FactId> = fact_names
            .iter()
            .enumerate()
            .map(|(i, n)| b.add_fact_with_truth(format!("{n}-f{i}"), Label::from_bool(labels[i])))
            .collect();
        let mut cast = BTreeSet::new();
        for (s, f, v) in votes {
            let s = sources[s as usize % sources.len()];
            let f = facts[f as usize % facts.len()];
            if cast.insert((s, f)) {
                b.cast(s, f, if v { Vote::True } else { Vote::False }).unwrap();
            }
        }
        // Sources left voteless by the draw stay voteless: the roster
        // sidecar makes them representable (this used to require patching
        // every silent source with a synthetic vote).
        let ds = b.build().unwrap();
        roundtrip(&ds);
    }
}

#[test]
fn voteless_sources_survive_via_the_roster() {
    let mut b = DatasetBuilder::new();
    let active = b.add_source("active");
    b.add_source("registered-but-silent");
    b.add_source("another,quiet \"one\"");
    let f = b.add_fact_with_truth("f0", Label::True);
    b.cast(active, f, Vote::True).unwrap();
    let ds = b.build().unwrap();
    let back = roundtrip(&ds);
    assert_eq!(back.n_sources(), 3);
    let silent = back.sources().find(|&s| back.source_name(s) == "registered-but-silent").unwrap();
    assert!(back.votes().votes_by(silent).is_empty());
    // Without the roster the same dataset loses its silent sources.
    let narrow = dataset_from_csv(&votes_to_csv(&ds), Some(&truth_to_csv(&ds).unwrap())).unwrap();
    assert_eq!(narrow.n_sources(), 1);
}
