//! Multi-answer question structure (Hubdub-style datasets).
//!
//! The paper's §6.2.6 evaluates IncEstimate on the Hubdub dataset, where
//! each *question* has several mutually-exclusive candidate answers and each
//! candidate answer is one binary fact ("this candidate is the settled
//! answer"). A user vote *for* one candidate is implicitly a vote *against*
//! its siblings; algorithms may exploit that expansion (see
//! `corroborate-algorithms::multi_answer`).

use crate::error::CoreError;
use crate::ids::{FactId, QuestionId};

/// Partition of a dataset's facts into mutually-exclusive answer groups.
///
/// Every fact belongs to exactly one question; single-fact "questions" model
/// ordinary standalone binary facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuestionStructure {
    /// facts of each question, sorted.
    members: Vec<Vec<FactId>>,
    /// question of each fact, indexed by fact id.
    question_of: Vec<QuestionId>,
}

impl QuestionStructure {
    /// Builds the structure from a per-fact question id vector.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] if question ids are not dense
    /// (`0..n_questions` each used at least once).
    pub fn from_assignments(question_of: Vec<QuestionId>) -> Result<Self, CoreError> {
        let n_questions = question_of.iter().map(|q| q.index() + 1).max().unwrap_or(0);
        let mut members: Vec<Vec<FactId>> = vec![Vec::new(); n_questions];
        for (fi, q) in question_of.iter().enumerate() {
            members[q.index()].push(FactId::new(fi));
        }
        if let Some(empty) = members.iter().position(Vec::is_empty) {
            return Err(CoreError::InvalidConfig {
                message: format!("question ids are not dense: q{empty} has no facts"),
            });
        }
        Ok(Self { members, question_of })
    }

    /// Number of questions.
    pub fn n_questions(&self) -> usize {
        self.members.len()
    }

    /// Number of facts covered (== dataset's fact count).
    pub fn n_facts(&self) -> usize {
        self.question_of.len()
    }

    /// The candidate facts of `question`, sorted by fact id.
    pub fn candidates(&self, question: QuestionId) -> &[FactId] {
        &self.members[question.index()]
    }

    /// The question owning `fact`.
    pub fn question_of(&self, fact: FactId) -> QuestionId {
        self.question_of[fact.index()]
    }

    /// The sibling candidates of `fact` (same question, excluding `fact`).
    pub fn siblings(&self, fact: FactId) -> impl Iterator<Item = FactId> + '_ {
        self.candidates(self.question_of(fact)).iter().copied().filter(move |&f| f != fact)
    }

    /// Iterator over all question ids.
    pub fn questions(&self) -> impl Iterator<Item = QuestionId> + '_ {
        (0..self.members.len()).map(QuestionId::new)
    }

    /// Largest number of candidates over all questions.
    pub fn max_candidates(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QuestionId {
        QuestionId::new(i)
    }
    fn f(i: usize) -> FactId {
        FactId::new(i)
    }

    #[test]
    fn builds_membership_both_ways() {
        let s = QuestionStructure::from_assignments(vec![q(0), q(1), q(0), q(1), q(1)]).unwrap();
        assert_eq!(s.n_questions(), 2);
        assert_eq!(s.n_facts(), 5);
        assert_eq!(s.candidates(q(0)), &[f(0), f(2)]);
        assert_eq!(s.candidates(q(1)), &[f(1), f(3), f(4)]);
        assert_eq!(s.question_of(f(3)), q(1));
        assert_eq!(s.max_candidates(), 3);
    }

    #[test]
    fn siblings_exclude_self() {
        let s = QuestionStructure::from_assignments(vec![q(0), q(0), q(0)]).unwrap();
        let sib: Vec<_> = s.siblings(f(1)).collect();
        assert_eq!(sib, vec![f(0), f(2)]);
    }

    #[test]
    fn rejects_sparse_question_ids() {
        // q1 never used.
        let err = QuestionStructure::from_assignments(vec![q(0), q(2)]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_structure_is_valid() {
        let s = QuestionStructure::from_assignments(vec![]).unwrap();
        assert_eq!(s.n_questions(), 0);
        assert_eq!(s.n_facts(), 0);
        assert_eq!(s.questions().count(), 0);
    }
}
