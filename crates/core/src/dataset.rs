//! Datasets: named sources + facts + the vote matrix, with optional ground
//! truth and optional multi-answer question structure.

use crate::error::CoreError;
use crate::ids::{FactId, SourceId};
use crate::questions::QuestionStructure;
use crate::truth::{Label, TruthAssignment};
use crate::vote::{Vote, VoteMatrix, VoteMatrixBuilder};

/// A corroboration problem instance.
///
/// A dataset owns:
/// - a list of source names (indexable by [`SourceId`]);
/// - a list of fact names (indexable by [`FactId`]);
/// - the immutable [`VoteMatrix`];
/// - optionally, the ground-truth [`TruthAssignment`] (used for evaluation
///   only — algorithms never read it);
/// - optionally, a [`QuestionStructure`] grouping facts into
///   mutually-exclusive answers.
///
/// Construct with [`DatasetBuilder`].
#[derive(Debug, Clone)]
pub struct Dataset {
    source_names: Vec<String>,
    fact_names: Vec<String>,
    votes: VoteMatrix,
    ground_truth: Option<TruthAssignment>,
    questions: Option<QuestionStructure>,
}

impl Dataset {
    /// Number of sources.
    #[inline]
    pub fn n_sources(&self) -> usize {
        self.source_names.len()
    }

    /// Number of facts.
    #[inline]
    pub fn n_facts(&self) -> usize {
        self.fact_names.len()
    }

    /// The vote matrix.
    #[inline]
    pub fn votes(&self) -> &VoteMatrix {
        &self.votes
    }

    /// Name of `source`.
    pub fn source_name(&self, source: SourceId) -> &str {
        &self.source_names[source.index()]
    }

    /// Name of `fact`.
    pub fn fact_name(&self, fact: FactId) -> &str {
        &self.fact_names[fact.index()]
    }

    /// Ground truth, if attached.
    pub fn ground_truth(&self) -> Option<&TruthAssignment> {
        self.ground_truth.as_ref()
    }

    /// Ground truth, or an error naming the missing component.
    pub fn require_ground_truth(&self) -> Result<&TruthAssignment, CoreError> {
        self.ground_truth.as_ref().ok_or(CoreError::MissingComponent { what: "ground truth" })
    }

    /// Question structure, if attached.
    pub fn questions(&self) -> Option<&QuestionStructure> {
        self.questions.as_ref()
    }

    /// Question structure, or an error naming the missing component.
    pub fn require_questions(&self) -> Result<&QuestionStructure, CoreError> {
        self.questions.as_ref().ok_or(CoreError::MissingComponent { what: "question structure" })
    }

    /// Iterator over all source ids.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        (0..self.n_sources()).map(SourceId::new)
    }

    /// Iterator over all fact ids.
    pub fn facts(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.n_facts()).map(FactId::new)
    }

    /// The *empirical accuracy* of `source` against the ground truth: the
    /// fraction of its votes whose polarity matches the true label.
    /// Returns `None` when the source casts no votes.
    ///
    /// This is the `t(s_i)` of the paper's Equation (10); Table 3 reports it
    /// per source over the golden set.
    pub fn source_accuracy(&self, source: SourceId) -> Result<Option<f64>, CoreError> {
        let truth = self.require_ground_truth()?;
        let votes = self.votes.votes_by(source);
        if votes.is_empty() {
            return Ok(None);
        }
        let correct =
            votes.iter().filter(|fv| fv.vote.as_bool() == truth.label(fv.fact).as_bool()).count();
        Ok(Some(correct as f64 / votes.len() as f64))
    }

    /// Empirical accuracy of every source (see [`Self::source_accuracy`]);
    /// silent sources get `None`.
    pub fn source_accuracies(&self) -> Result<Vec<Option<f64>>, CoreError> {
        self.sources().map(|s| self.source_accuracy(s)).collect()
    }

    /// Coverage of `source`: fraction of all facts it votes on.
    pub fn source_coverage(&self, source: SourceId) -> f64 {
        if self.n_facts() == 0 {
            return 0.0;
        }
        self.votes.votes_by(source).len() as f64 / self.n_facts() as f64
    }

    /// Jaccard overlap of two sources' vote supports:
    /// `|facts(a) ∩ facts(b)| / |facts(a) ∪ facts(b)|`.
    ///
    /// This is the "source overlap" of the paper's Table 3. Returns 0 when
    /// both sources are silent (by convention `J(∅, ∅) = 0`, except
    /// `J(s, s) = 1` for a voting source).
    pub fn source_overlap(&self, a: SourceId, b: SourceId) -> f64 {
        let va = self.votes.votes_by(a);
        let vb = self.votes.votes_by(b);
        if va.is_empty() && vb.is_empty() {
            return if a == b { 1.0 } else { 0.0 };
        }
        // Both posting lists are sorted by fact id: merge-count.
        let mut i = 0;
        let mut j = 0;
        let mut inter = 0usize;
        while i < va.len() && j < vb.len() {
            match va[i].fact.cmp(&vb[j].fact) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = va.len() + vb.len() - inter;
        inter as f64 / union as f64
    }

    /// Restricts the dataset to `facts` (in the given order), remapping fact
    /// ids to `0..facts.len()`. Sources are kept as-is. Ground truth and
    /// question structure (if any) are projected; questions that lose all
    /// facts are dropped and the remaining ones re-densified.
    ///
    /// Used to evaluate algorithms on a golden subset, exactly as the paper
    /// evaluates on its 601-listing golden set.
    pub fn project_facts(&self, facts: &[FactId]) -> Result<Dataset, CoreError> {
        for &f in facts {
            if f.index() >= self.n_facts() {
                return Err(CoreError::IdOutOfRange {
                    kind: "fact",
                    index: f.index(),
                    len: self.n_facts(),
                });
            }
        }
        let mut b = DatasetBuilder::new();
        for name in &self.source_names {
            b.add_source(name.clone());
        }
        let truth = self.ground_truth.as_ref();
        for &f in facts {
            let label = truth.map(|t| t.label(f));
            b.add_fact_full(self.fact_names[f.index()].clone(), label);
        }
        for (new_idx, &f) in facts.iter().enumerate() {
            for sv in self.votes.votes_on(f) {
                b.cast(sv.source, FactId::new(new_idx), sv.vote)?;
            }
        }
        // Project question structure: keep relative grouping via old ids.
        if let Some(q) = &self.questions {
            let mut remap: Vec<Option<usize>> = vec![None; q.n_questions()];
            let mut next = 0usize;
            let mut assignments = Vec::with_capacity(facts.len());
            for &f in facts {
                let old_q = q.question_of(f).index();
                let new_q = *remap[old_q].get_or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
                assignments.push(crate::ids::QuestionId::new(new_q));
            }
            b.set_question_assignments(assignments);
        }
        b.build()
    }

    /// Merges two datasets (e.g. two crawls of the same domain), matching
    /// sources and facts **by name**: the union of both source sets and
    /// both fact sets, with all votes replayed — `other`'s vote wins when
    /// both datasets have the same source voting on the same fact (the
    /// newer crawl overrides the older, matching the builder's
    /// last-writer-wins semantics).
    ///
    /// Ground truth is kept only when every fact of the result has a label
    /// and overlapping facts agree. Question structures are not merged.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when the two datasets carry
    /// contradicting ground-truth labels for the same fact name.
    pub fn merge(&self, other: &Dataset) -> Result<Dataset, CoreError> {
        use std::collections::HashMap;
        let mut b = DatasetBuilder::new();
        let mut source_ids: HashMap<&str, SourceId> = HashMap::new();
        let mut fact_ids: HashMap<&str, FactId> = HashMap::new();

        for ds in [self, other] {
            for s in ds.sources() {
                let name = ds.source_name(s);
                if !source_ids.contains_key(name) {
                    source_ids.insert(name, b.add_source(name.to_string()));
                }
            }
        }
        for ds in [self, other] {
            let truth = ds.ground_truth();
            for f in ds.facts() {
                let name = ds.fact_name(f);
                let label = truth.map(|t| t.label(f));
                match fact_ids.get(name) {
                    None => {
                        let id = b.add_fact_full(name.to_string(), label);
                        fact_ids.insert(name, id);
                    }
                    Some(&id) => {
                        if let (Some(new), Some(old)) = (label, b.truth[id.index()]) {
                            if new != old {
                                return Err(CoreError::InvalidConfig {
                                    message: format!(
                                        "merge conflict: fact {name:?} labelled {old:?} and {new:?}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        for ds in [self, other] {
            for f in ds.facts() {
                let fid = fact_ids[ds.fact_name(f)];
                for sv in ds.votes().votes_on(f) {
                    let sid = source_ids[ds.source_name(sv.source)];
                    b.cast(sid, fid, sv.vote)?;
                }
            }
        }
        b.build()
    }

    /// Renders the dataset as the paper's Table 1 style grid (`T`/`F`/`-`),
    /// one row per fact. Intended for debugging small instances.
    pub fn to_grid_string(&self) -> String {
        let mut out = String::new();
        for f in self.facts() {
            out.push_str(self.fact_name(f));
            out.push(':');
            for s in self.sources() {
                out.push(' ');
                out.push(match self.votes.vote(s, f) {
                    Some(v) => v.symbol(),
                    None => '-',
                });
            }
            if let Some(t) = &self.ground_truth {
                out.push_str(if t.label(f).as_bool() { "  (true)" } else { "  (false)" });
            }
            out.push('\n');
        }
        out
    }
}

/// Incremental builder for [`Dataset`].
///
/// ```
/// use corroborate_core::prelude::*;
///
/// let mut b = DatasetBuilder::new();
/// let yelp = b.add_source("Yelp");
/// let f = b.add_fact_with_truth("r1", Label::True);
/// b.cast(yelp, f, Vote::True).unwrap();
/// let ds = b.build().unwrap();
/// assert_eq!(ds.n_sources(), 1);
/// assert_eq!(ds.n_facts(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    source_names: Vec<String>,
    fact_names: Vec<String>,
    truth: Vec<Option<Label>>,
    votes: Vec<(SourceId, FactId, Vote)>,
    question_assignments: Option<Vec<crate::ids::QuestionId>>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source and returns its id.
    pub fn add_source(&mut self, name: impl Into<String>) -> SourceId {
        let id = SourceId::new(self.source_names.len());
        self.source_names.push(name.into());
        id
    }

    /// Registers a fact with unknown ground truth and returns its id.
    pub fn add_fact(&mut self, name: impl Into<String>) -> FactId {
        self.add_fact_full(name.into(), None)
    }

    /// Registers a fact with known ground truth and returns its id.
    pub fn add_fact_with_truth(&mut self, name: impl Into<String>, label: Label) -> FactId {
        self.add_fact_full(name.into(), Some(label))
    }

    fn add_fact_full(&mut self, name: String, label: Option<Label>) -> FactId {
        let id = FactId::new(self.fact_names.len());
        self.fact_names.push(name);
        self.truth.push(label);
        id
    }

    /// Records a vote. Ids are validated at [`Self::build`] time as well,
    /// but casting with ids not returned by this builder is an error caught
    /// here when possible.
    pub fn cast(&mut self, source: SourceId, fact: FactId, vote: Vote) -> Result<(), CoreError> {
        if source.index() >= self.source_names.len() {
            return Err(CoreError::IdOutOfRange {
                kind: "source",
                index: source.index(),
                len: self.source_names.len(),
            });
        }
        if fact.index() >= self.fact_names.len() {
            return Err(CoreError::IdOutOfRange {
                kind: "fact",
                index: fact.index(),
                len: self.fact_names.len(),
            });
        }
        self.votes.push((source, fact, vote));
        Ok(())
    }

    /// Attaches a per-fact question assignment (for multi-answer datasets).
    /// The vector must be parallel to the facts added so far at build time.
    pub fn set_question_assignments(&mut self, assignments: Vec<crate::ids::QuestionId>) {
        self.question_assignments = Some(assignments);
    }

    /// Number of facts registered so far.
    pub fn n_facts(&self) -> usize {
        self.fact_names.len()
    }

    /// Number of sources registered so far.
    pub fn n_sources(&self) -> usize {
        self.source_names.len()
    }

    /// Finalises the dataset.
    ///
    /// Ground truth is attached only if *every* fact has a label (partial
    /// labelling is expressed by projecting to the labelled subset instead,
    /// see [`Dataset::project_facts`]).
    ///
    /// # Errors
    /// - [`CoreError::LengthMismatch`] if question assignments don't cover
    ///   every fact exactly;
    /// - propagated errors from vote-matrix construction.
    pub fn build(self) -> Result<Dataset, CoreError> {
        let mut mb = VoteMatrixBuilder::new(self.source_names.len(), self.fact_names.len());
        for (s, f, v) in self.votes {
            mb.cast(s, f, v)?;
        }
        let ground_truth = if !self.truth.is_empty() && self.truth.iter().all(Option::is_some) {
            Some(TruthAssignment::new(self.truth.iter().map(|l| l.unwrap()).collect()))
        } else {
            None
        };
        let questions = match self.question_assignments {
            Some(a) => {
                if a.len() != self.fact_names.len() {
                    return Err(CoreError::LengthMismatch {
                        what: "question assignments",
                        expected: self.fact_names.len(),
                        actual: a.len(),
                    });
                }
                Some(QuestionStructure::from_assignments(a)?)
            }
            None => None,
        };
        Ok(Dataset {
            source_names: self.source_names,
            fact_names: self.fact_names,
            votes: mb.build(),
            ground_truth,
            questions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::QuestionId;

    fn small() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s0 = b.add_source("a");
        let s1 = b.add_source("b");
        let f0 = b.add_fact_with_truth("f0", Label::True);
        let f1 = b.add_fact_with_truth("f1", Label::False);
        let f2 = b.add_fact_with_truth("f2", Label::True);
        b.cast(s0, f0, Vote::True).unwrap();
        b.cast(s0, f1, Vote::True).unwrap();
        b.cast(s1, f0, Vote::True).unwrap();
        b.cast(s1, f2, Vote::True).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_dataset() {
        let ds = small();
        assert_eq!(ds.n_sources(), 2);
        assert_eq!(ds.n_facts(), 3);
        assert_eq!(ds.votes().n_votes(), 4);
        assert_eq!(ds.source_name(SourceId::new(1)), "b");
        assert_eq!(ds.fact_name(FactId::new(2)), "f2");
    }

    #[test]
    fn accuracy_counts_matching_polarity() {
        let ds = small();
        // s0 voted T on f0 (true → correct) and T on f1 (false → wrong).
        assert_eq!(ds.source_accuracy(SourceId::new(0)).unwrap(), Some(0.5));
        // s1 voted T on f0 and f2, both true.
        assert_eq!(ds.source_accuracy(SourceId::new(1)).unwrap(), Some(1.0));
    }

    #[test]
    fn coverage_and_overlap() {
        let ds = small();
        let a = SourceId::new(0);
        let b = SourceId::new(1);
        assert!((ds.source_coverage(a) - 2.0 / 3.0).abs() < 1e-12);
        // supports: {f0, f1} and {f0, f2}; intersection 1, union 3.
        assert!((ds.source_overlap(a, b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ds.source_overlap(a, a), 1.0);
    }

    #[test]
    fn missing_truth_yields_error() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("unlabelled");
        let ds = b.build().unwrap();
        assert!(ds.ground_truth().is_none());
        assert!(matches!(ds.require_ground_truth(), Err(CoreError::MissingComponent { .. })));
    }

    #[test]
    fn project_facts_remaps_ids_truth_and_votes() {
        let ds = small();
        let sub = ds.project_facts(&[FactId::new(2), FactId::new(0)]).unwrap();
        assert_eq!(sub.n_facts(), 2);
        assert_eq!(sub.fact_name(FactId::new(0)), "f2");
        // f2 had a single T vote from s1.
        assert_eq!(sub.votes().votes_on(FactId::new(0)).len(), 1);
        assert_eq!(sub.ground_truth().unwrap().label(FactId::new(1)), Label::True);
    }

    #[test]
    fn project_facts_rejects_bad_ids() {
        let ds = small();
        assert!(ds.project_facts(&[FactId::new(9)]).is_err());
    }

    #[test]
    fn question_assignments_roundtrip_through_projection() {
        let mut b = DatasetBuilder::new();
        let s = b.add_source("s");
        for i in 0..4 {
            b.add_fact_with_truth(format!("f{i}"), Label::True);
        }
        b.cast(s, FactId::new(0), Vote::True).unwrap();
        b.set_question_assignments(vec![
            QuestionId::new(0),
            QuestionId::new(0),
            QuestionId::new(1),
            QuestionId::new(1),
        ]);
        let ds = b.build().unwrap();
        assert_eq!(ds.questions().unwrap().n_questions(), 2);
        // Project away question 0 entirely: remaining structure re-densifies.
        let sub = ds.project_facts(&[FactId::new(2), FactId::new(3)]).unwrap();
        let q = sub.questions().unwrap();
        assert_eq!(q.n_questions(), 1);
        assert_eq!(q.candidates(QuestionId::new(0)).len(), 2);
    }

    #[test]
    fn question_assignment_length_mismatch_is_rejected() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("f0");
        b.add_fact("f1");
        b.set_question_assignments(vec![QuestionId::new(0)]);
        assert!(matches!(b.build(), Err(CoreError::LengthMismatch { .. })));
    }

    #[test]
    fn merge_unions_by_name_with_newer_votes_winning() {
        let mut b1 = DatasetBuilder::new();
        let a = b1.add_source("A");
        let f1 = b1.add_fact_with_truth("danny", Label::False);
        let f2 = b1.add_fact_with_truth("mbar", Label::True);
        b1.cast(a, f1, Vote::True).unwrap();
        b1.cast(a, f2, Vote::True).unwrap();
        let old = b1.build().unwrap();

        let mut b2 = DatasetBuilder::new();
        let a2 = b2.add_source("A");
        let c = b2.add_source("C");
        let f1b = b2.add_fact_with_truth("danny", Label::False);
        let f3 = b2.add_fact_with_truth("newplace", Label::True);
        // The newer crawl flags danny CLOSED.
        b2.cast(a2, f1b, Vote::False).unwrap();
        b2.cast(c, f3, Vote::True).unwrap();
        let new = b2.build().unwrap();

        let merged = old.merge(&new).unwrap();
        assert_eq!(merged.n_sources(), 2);
        assert_eq!(merged.n_facts(), 3);
        let danny = merged.facts().find(|&f| merged.fact_name(f) == "danny").unwrap();
        let a_id = merged.sources().find(|&s| merged.source_name(s) == "A").unwrap();
        assert_eq!(merged.votes().vote(a_id, danny), Some(Vote::False));
        assert_eq!(merged.ground_truth().unwrap().n_true(), 2);
    }

    #[test]
    fn merge_rejects_contradicting_truth() {
        let mut b1 = DatasetBuilder::new();
        b1.add_source("A");
        b1.add_fact_with_truth("x", Label::True);
        let d1 = b1.build().unwrap();
        let mut b2 = DatasetBuilder::new();
        b2.add_source("A");
        b2.add_fact_with_truth("x", Label::False);
        let d2 = b2.build().unwrap();
        assert!(matches!(d1.merge(&d2), Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn merge_without_full_truth_drops_ground_truth() {
        let mut b1 = DatasetBuilder::new();
        b1.add_source("A");
        b1.add_fact_with_truth("x", Label::True);
        let d1 = b1.build().unwrap();
        let mut b2 = DatasetBuilder::new();
        b2.add_source("A");
        b2.add_fact("y"); // unlabelled
        let d2 = b2.build().unwrap();
        let merged = d1.merge(&d2).unwrap();
        assert!(merged.ground_truth().is_none());
    }

    #[test]
    fn grid_string_renders_votes() {
        let ds = small();
        let grid = ds.to_grid_string();
        assert!(grid.contains("f0: T T  (true)"));
        assert!(grid.contains("f2: - T  (true)"));
    }
}
