//! Information-entropy utilities (paper §3.2, Equation 3).
//!
//! The entropy of an unknown fact with truth probability `p` is the binary
//! entropy `H(p) = −p·log2 p − (1−p)·log2(1−p)`; the *collective entropy* of
//! a set of unevaluated facts is the sum of their entropies. IncEstHeu
//! selects fact groups to maximise the projected collective entropy of the
//! remaining facts (Equation 9).

/// Binary entropy of probability `p`, in bits.
///
/// By the standard information-theoretic convention `0·log 0 = 0`, so
/// `H(0) = H(1) = 0`; the maximum `H(0.5) = 1`.
///
/// `p` outside `[0, 1]` is clamped — callers feed computed probabilities
/// that can drift by an ulp past the boundary.
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// Collective entropy of a set of probabilities: `Σ H(p_i)`.
pub fn collective_entropy(probs: impl IntoIterator<Item = f64>) -> f64 {
    probs.into_iter().map(binary_entropy).sum()
}

/// Entropy delta when a fact's probability moves from `before` to `after`.
#[inline]
pub fn entropy_delta(before: f64, after: f64) -> f64 {
    binary_entropy(after) - binary_entropy(before)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn endpoints_have_zero_entropy() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
    }

    #[test]
    fn half_has_maximal_entropy_one() {
        assert!(close(binary_entropy(0.5), 1.0));
    }

    #[test]
    fn entropy_is_symmetric_around_half() {
        for p in [0.1, 0.25, 0.3, 0.47] {
            assert!(close(binary_entropy(p), binary_entropy(1.0 - p)), "p = {p}");
        }
    }

    #[test]
    fn entropy_is_monotone_toward_half() {
        assert!(binary_entropy(0.3) < binary_entropy(0.4));
        assert!(binary_entropy(0.9) < binary_entropy(0.6));
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        assert_eq!(binary_entropy(-0.1), 0.0);
        assert_eq!(binary_entropy(1.1), 0.0);
        assert_eq!(binary_entropy(f64::NEG_INFINITY), 0.0);
        assert_eq!(binary_entropy(f64::INFINITY), 0.0);
    }

    #[test]
    fn nan_input_contributes_no_entropy() {
        // clamp(NaN) stays NaN, but both branch guards are then false, so
        // a NaN probability silently contributes zero rather than
        // poisoning a collective sum.
        assert_eq!(binary_entropy(f64::NAN), 0.0);
        assert!(collective_entropy([0.5, f64::NAN]).is_finite());
    }

    #[test]
    fn near_boundary_sweep_stays_finite_and_monotone() {
        // H must approach 0 smoothly from either end — no NaN/−0 glitches
        // from the p·log p limit.
        let mut prev = 0.0;
        for exp in (1..=300).rev() {
            let p = 2.0f64.powi(-exp);
            let h = binary_entropy(p);
            assert!(h.is_finite() && h >= prev, "p = 2^-{exp}: H = {h}");
            assert!(close(h, binary_entropy(1.0 - p)), "mirror broke at p = 2^-{exp}");
            prev = h;
        }
    }

    #[test]
    fn collective_entropy_sums() {
        let h = collective_entropy([0.5, 0.5, 1.0]);
        assert!(close(h, 2.0));
        assert_eq!(collective_entropy(std::iter::empty()), 0.0);
    }

    #[test]
    fn delta_signs() {
        // Moving toward 0.5 raises entropy; away lowers it.
        assert!(entropy_delta(0.9, 0.6) > 0.0);
        assert!(entropy_delta(0.6, 0.9) < 0.0);
        assert!(close(entropy_delta(0.3, 0.3), 0.0));
    }

    #[test]
    fn known_value_quarter() {
        // H(0.25) = 0.25*2 + 0.75*log2(4/3) ≈ 0.8112781245
        assert!((binary_entropy(0.25) - 0.811_278_124_459_133).abs() < 1e-12);
    }
}
