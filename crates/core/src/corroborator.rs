//! The [`Corroborator`] trait — the common interface every truth-discovery
//! algorithm in this workspace implements — and [`CorroborationResult`],
//! the structured outcome of a run.

use crate::dataset::Dataset;
use crate::error::CoreError;
use crate::metrics::{trust_mse, ConfusionMatrix};
use crate::trust::{TrustSnapshot, TrustTrajectory};
use crate::truth::TruthAssignment;

/// Outcome of a corroboration run: per-fact truth probabilities, the hard
/// decisions derived from them, the final per-source trust scores, and the
/// full multi-value trust trajectory when the algorithm produces one.
#[derive(Debug, Clone)]
pub struct CorroborationResult {
    probabilities: Vec<f64>,
    decisions: TruthAssignment,
    trust: TrustSnapshot,
    trajectory: Option<TrustTrajectory>,
    rounds: usize,
}

impl CorroborationResult {
    /// Assembles a result; decisions are derived from `probabilities` by
    /// the paper's 0.5 threshold (Equation 2).
    ///
    /// `rounds` is the number of iterations (one-shot algorithms) or time
    /// points (incremental algorithms) the run used.
    pub fn new(
        probabilities: Vec<f64>,
        trust: TrustSnapshot,
        trajectory: Option<TrustTrajectory>,
        rounds: usize,
    ) -> Result<Self, CoreError> {
        for &p in &probabilities {
            crate::error::check_probability("fact probability", p)?;
        }
        let decisions = TruthAssignment::from_probabilities(&probabilities);
        Ok(Self { probabilities, decisions, trust, trajectory, rounds })
    }

    /// The probability that each fact is true, indexed by fact id.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Probability of one fact.
    pub fn probability(&self, fact: crate::ids::FactId) -> f64 {
        self.probabilities[fact.index()]
    }

    /// Hard true/false decisions (threshold 0.5).
    pub fn decisions(&self) -> &TruthAssignment {
        &self.decisions
    }

    /// Final per-source trust scores.
    pub fn trust(&self) -> &TrustSnapshot {
        &self.trust
    }

    /// Multi-value trust trajectory, if the algorithm is incremental.
    pub fn trajectory(&self) -> Option<&TrustTrajectory> {
        self.trajectory.as_ref()
    }

    /// Number of rounds / iterations / time points used.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Confusion matrix against the dataset's ground truth.
    ///
    /// # Errors
    /// [`CoreError::MissingComponent`] when the dataset has no ground truth.
    pub fn confusion(&self, dataset: &Dataset) -> Result<ConfusionMatrix, CoreError> {
        ConfusionMatrix::from_assignments(&self.decisions, dataset.require_ground_truth()?)
    }

    /// Trust-score MSE against the dataset's empirical source accuracies
    /// (paper Equation 10 / Table 5).
    pub fn trust_mse(&self, dataset: &Dataset) -> Result<f64, CoreError> {
        let reference = dataset.source_accuracies()?;
        trust_mse(&reference, self.trust.values())
    }
}

/// A truth-discovery algorithm: maps a dataset to probabilities + trust.
///
/// Implementations must be deterministic given their configuration (any
/// randomised algorithm takes an explicit seed in its config) and must not
/// read the dataset's ground truth.
pub trait Corroborator {
    /// Short human-readable name used in benchmark tables (e.g.
    /// `"TwoEstimate"`, `"IncEstHeu"`).
    fn name(&self) -> &str;

    /// Runs the algorithm over `dataset`.
    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError>;
}

/// Blanket impl so `Box<dyn Corroborator>` collections (benchmark harness
/// method lists) work ergonomically.
impl<T: Corroborator + ?Sized> Corroborator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        (**self).corroborate(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::ids::FactId;
    use crate::truth::Label;
    use crate::vote::Vote;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source("s");
        let f0 = b.add_fact_with_truth("f0", Label::True);
        let f1 = b.add_fact_with_truth("f1", Label::False);
        b.cast(s, f0, Vote::True).unwrap();
        b.cast(s, f1, Vote::True).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn result_derives_decisions_from_probabilities() {
        let trust = TrustSnapshot::uniform(1, 0.5).unwrap();
        let r = CorroborationResult::new(vec![0.8, 0.2], trust, None, 1).unwrap();
        assert!(r.decisions().label(FactId::new(0)).as_bool());
        assert!(!r.decisions().label(FactId::new(1)).as_bool());
        assert_eq!(r.probability(FactId::new(1)), 0.2);
        assert_eq!(r.rounds(), 1);
        assert!(r.trajectory().is_none());
    }

    #[test]
    fn result_rejects_invalid_probabilities() {
        let trust = TrustSnapshot::uniform(1, 0.5).unwrap();
        assert!(CorroborationResult::new(vec![1.2], trust, None, 0).is_err());
    }

    #[test]
    fn confusion_and_mse_against_dataset() {
        let ds = dataset();
        let trust = TrustSnapshot::from_values(vec![0.5]).unwrap();
        let r = CorroborationResult::new(vec![0.9, 0.9], trust, None, 1).unwrap();
        let m = r.confusion(&ds).unwrap();
        assert_eq!((m.tp, m.fp), (1, 1));
        // Source voted T on one true and one false fact → accuracy 0.5;
        // computed trust 0.5 → MSE 0.
        assert!(r.trust_mse(&ds).unwrap() < 1e-12);
    }

    struct AlwaysTrue;
    impl Corroborator for AlwaysTrue {
        fn name(&self) -> &str {
            "AlwaysTrue"
        }
        fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
            CorroborationResult::new(
                vec![1.0; dataset.n_facts()],
                TrustSnapshot::uniform(dataset.n_sources(), 1.0)?,
                None,
                1,
            )
        }
    }

    #[test]
    fn boxed_corroborator_delegates() {
        let ds = dataset();
        let boxed: Box<dyn Corroborator> = Box::new(AlwaysTrue);
        assert_eq!(boxed.name(), "AlwaysTrue");
        let r = boxed.corroborate(&ds).unwrap();
        assert_eq!(r.probabilities(), &[1.0, 1.0]);
    }
}
