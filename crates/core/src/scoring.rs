//! The `Corrob` scoring rule (paper Equation 5, generalised to `F` votes).
//!
//! Given a trust snapshot `σ(S)`, the probability that a fact is true is the
//! average, over the sources voting on it, of the probability that the vote
//! is consistent with the fact being true:
//!
//! ```text
//! σ(f) = ( Σ_{s: s(f)=T} σ(s)  +  Σ_{s: s(f)=F} (1 − σ(s)) ) / |S_f|
//! ```
//!
//! This is the scoring the paper adopts from the TwoEstimate algorithm and
//! uses inside IncEstimate (§5, "we assume the scoring of the TwoEstimate
//! algorithm (Equation 5) is used").

use crate::trust::TrustSnapshot;
use crate::vote::{SourceVote, Vote};

/// Corrob probability of a fact from its vote postings, under `trust`.
///
/// Returns `None` for facts with no votes — callers decide how to treat
/// silent facts (the library's algorithms default them to the configured
/// prior).
pub fn corrob_probability(votes: &[SourceVote], trust: &TrustSnapshot) -> Option<f64> {
    if votes.is_empty() {
        return None;
    }
    let sum: f64 = votes
        .iter()
        .map(|sv| {
            let t = trust.trust(sv.source);
            match sv.vote {
                Vote::True => t,
                Vote::False => 1.0 - t,
            }
        })
        .sum();
    Some(sum / votes.len() as f64)
}

/// Corrob probability with a `prior` fallback for voteless facts.
pub fn corrob_probability_or(votes: &[SourceVote], trust: &TrustSnapshot, prior: f64) -> f64 {
    corrob_probability(votes, trust).unwrap_or(prior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SourceId;

    fn sv(i: usize, vote: Vote) -> SourceVote {
        SourceVote { source: SourceId::new(i), vote }
    }

    #[test]
    fn affirmative_only_averages_trust() {
        let trust = TrustSnapshot::from_values(vec![0.9, 0.7]).unwrap();
        let p = corrob_probability(&[sv(0, Vote::True), sv(1, Vote::True)], &trust).unwrap();
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn f_votes_contribute_one_minus_trust() {
        // The paper's round-1 walkthrough: r12 with F from s2 (0.9), F from
        // s3 (0.9), T from s4 (0.9) → (0.1 + 0.1 + 0.9)/3.
        let trust = TrustSnapshot::uniform(5, 0.9).unwrap();
        let votes = [sv(1, Vote::False), sv(2, Vote::False), sv(3, Vote::True)];
        let p = corrob_probability(&votes, &trust).unwrap();
        assert!((p - (0.1 + 0.1 + 0.9) / 3.0).abs() < 1e-12);
        assert!(p < 0.5, "r12 must corroborate to false");
    }

    #[test]
    fn round_two_walkthrough_r5() {
        // r5: T from s1 (default 0.9), T from s4 (trust 0) → 0.45 < 0.5.
        let trust = TrustSnapshot::from_values(vec![0.9, 1.0, 1.0, 0.0, 1.0]).unwrap();
        let p = corrob_probability(&[sv(0, Vote::True), sv(3, Vote::True)], &trust).unwrap();
        assert!((p - 0.45).abs() < 1e-12);
    }

    #[test]
    fn voteless_fact_returns_none_and_prior_fallback() {
        let trust = TrustSnapshot::uniform(2, 0.9).unwrap();
        assert_eq!(corrob_probability(&[], &trust), None);
        assert_eq!(corrob_probability_or(&[], &trust, 0.9), 0.9);
    }

    #[test]
    fn zero_trust_sources_invert_votes() {
        let trust = TrustSnapshot::from_values(vec![0.0]).unwrap();
        assert_eq!(corrob_probability(&[sv(0, Vote::False)], &trust), Some(1.0));
        assert_eq!(corrob_probability(&[sv(0, Vote::True)], &trust), Some(0.0));
    }
}
