//! Source→group inverted index over fact groups.
//!
//! The IncEstimate hot path repeatedly asks "which fact groups does source
//! `s` vote on?" — the spillover term of Equation 9 only changes the Corrob
//! probability of groups sharing a source with the evaluated group, and a
//! trust update only dirties the probabilities of groups the re-scored
//! sources vote on. Scanning every remaining group per query makes both
//! operations O(G·|sig|²); this index answers them in O(deg(s)).
//!
//! Postings are built once from the canonical group list; groups keep their
//! index for the lifetime of a run (they drain to empty rather than being
//! removed), so a posting's group id stays valid. Owners may call
//! [`SourceGroupIndex::retain_groups`] after evaluation rounds to compact
//! drained groups out of the posting lists — callers still defensively skip
//! groups with no remaining members.

use crate::groups::FactGroup;
use crate::ids::SourceId;
use crate::vote::Vote;

/// One posting: a group a source votes on, with the vote's polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPosting {
    /// Index of the group in the canonical group list.
    pub group: usize,
    /// The polarity the source asserts for every fact of that group.
    pub vote: Vote,
}

/// Inverted index from sources to the fact groups they vote on.
///
/// Built from a canonical [`FactGroup`] list; postings per source are sorted
/// ascending by group index (construction visits groups in order).
#[derive(Debug, Clone, Default)]
pub struct SourceGroupIndex {
    postings: Vec<Vec<GroupPosting>>,
}

impl SourceGroupIndex {
    /// Builds the index over `groups` for a universe of `n_sources` sources.
    ///
    /// Signatures reference only sources below `n_sources`; out-of-range
    /// sources would indicate a corrupted dataset and panic via indexing.
    pub fn build(groups: &[FactGroup], n_sources: usize) -> Self {
        let mut postings = vec![Vec::new(); n_sources];
        for (gi, group) in groups.iter().enumerate() {
            for sv in &group.signature {
                postings[sv.source.index()].push(GroupPosting { group: gi, vote: sv.vote });
            }
        }
        Self { postings }
    }

    /// The groups `source` votes on, ascending by group index.
    #[inline]
    pub fn groups_of(&self, source: SourceId) -> &[GroupPosting] {
        &self.postings[source.index()]
    }

    /// Number of groups `source` votes on (the source's index degree).
    #[inline]
    pub fn degree(&self, source: SourceId) -> usize {
        self.postings[source.index()].len()
    }

    /// Number of sources covered.
    #[inline]
    pub fn n_sources(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings (`Σ_s deg(s)` = Σ_g |sig(g)|).
    pub fn n_postings(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Drops every posting whose group fails the `live` predicate,
    /// preserving the per-source sort order, and returns the number of
    /// postings removed.
    ///
    /// Groups drain monotonically over an IncEstimate run, so callers can
    /// compact after each evaluation round and keep posting walks
    /// proportional to the *live* degree instead of the build-time degree.
    /// Dead groups contribute nothing to spillover or dirty tracking, so
    /// removal never changes results. The removal count feeds compaction
    /// telemetry.
    pub fn retain_groups(&mut self, mut live: impl FnMut(usize) -> bool) -> usize {
        let mut removed = 0;
        for posts in &mut self.postings {
            let before = posts.len();
            posts.retain(|p| live(p.group));
            removed += before - posts.len();
        }
        removed
    }

    /// Collects the distinct groups touched by any of `sources`, sorted
    /// ascending — the candidate set the spillover sum iterates.
    pub fn touched_groups(&self, sources: impl IntoIterator<Item = SourceId>) -> Vec<usize> {
        let mut touched: Vec<usize> =
            sources.into_iter().flat_map(|s| self.groups_of(s).iter().map(|p| p.group)).collect();
        touched.sort_unstable();
        touched.dedup();
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::group_by_signature;
    use crate::ids::FactId;
    use crate::vote::VoteMatrixBuilder;

    fn sid(i: usize) -> SourceId {
        SourceId::new(i)
    }
    fn fid(i: usize) -> FactId {
        FactId::new(i)
    }

    fn sample_groups() -> Vec<FactGroup> {
        // f0,f1: {s0 T, s1 T}; f2: {s0 T, s1 F}; f3: no votes; f4: {s1 T}.
        let mut b = VoteMatrixBuilder::new(3, 5);
        b.cast(sid(0), fid(0), Vote::True).unwrap();
        b.cast(sid(1), fid(0), Vote::True).unwrap();
        b.cast(sid(0), fid(1), Vote::True).unwrap();
        b.cast(sid(1), fid(1), Vote::True).unwrap();
        b.cast(sid(0), fid(2), Vote::True).unwrap();
        b.cast(sid(1), fid(2), Vote::False).unwrap();
        b.cast(sid(1), fid(4), Vote::True).unwrap();
        let m = b.build();
        let facts: Vec<FactId> = m.facts().collect();
        group_by_signature(&m, &facts)
    }

    #[test]
    fn postings_cover_every_signature_entry() {
        let groups = sample_groups();
        let index = SourceGroupIndex::build(&groups, 3);
        assert_eq!(index.n_sources(), 3);
        let total_sig: usize = groups.iter().map(|g| g.signature.len()).sum();
        assert_eq!(index.n_postings(), total_sig);
        // Every posting round-trips to a signature entry with the same vote.
        for s in 0..3 {
            for p in index.groups_of(sid(s)) {
                let sv = groups[p.group]
                    .signature
                    .iter()
                    .find(|sv| sv.source == sid(s))
                    .expect("posting matches a signature entry");
                assert_eq!(sv.vote, p.vote);
            }
        }
    }

    #[test]
    fn postings_are_sorted_and_degrees_match() {
        let groups = sample_groups();
        let index = SourceGroupIndex::build(&groups, 3);
        for s in 0..3 {
            let posts = index.groups_of(sid(s));
            assert!(posts.windows(2).all(|w| w[0].group < w[1].group));
            assert_eq!(index.degree(sid(s)), posts.len());
        }
        // s2 casts no votes.
        assert_eq!(index.degree(sid(2)), 0);
    }

    #[test]
    fn touched_groups_unions_sorted_dedup() {
        let groups = sample_groups();
        let index = SourceGroupIndex::build(&groups, 3);
        let touched = index.touched_groups([sid(0), sid(1)]);
        // Exactly the groups with a non-empty signature.
        let expected: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.signature.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(touched, expected);
        assert!(index.touched_groups([sid(2)]).is_empty());
    }

    #[test]
    fn retain_groups_drops_postings_in_order() {
        let groups = sample_groups();
        let mut index = SourceGroupIndex::build(&groups, 3);
        // Drop the {s0 T, s1 T} group (first posting of both sources).
        let dead = index.groups_of(sid(0))[0].group;
        let removed = index.retain_groups(|g| g != dead);
        assert_eq!(removed, 2);
        for s in 0..3 {
            let posts = index.groups_of(sid(s));
            assert!(posts.iter().all(|p| p.group != dead));
            assert!(posts.windows(2).all(|w| w[0].group < w[1].group));
        }
        assert_eq!(index.n_postings(), 2 + 1);
    }

    #[test]
    fn empty_universe_is_fine() {
        let index = SourceGroupIndex::build(&[], 0);
        assert_eq!(index.n_postings(), 0);
        assert_eq!(index.n_sources(), 0);
    }
}
