//! Small statistics helpers: summary statistics and the McNemar test used
//! to back the paper's "statistically significant (p-value < 0.001)" claim
//! when comparing two classifiers on the same golden set (§6.2.2).

use crate::error::CoreError;
use crate::truth::TruthAssignment;

/// Arithmetic mean; `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator); `None` with fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// How the p-value of a [`McNemar`] result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McNemarMethod {
    /// Exact two-sided binomial test — used when the discordant count is
    /// positive but below 25, where the χ² approximation is unreliable.
    ExactBinomial,
    /// Continuity-corrected χ²(1) approximation — used for 25 or more
    /// discordant pairs (and, degenerately, for zero discordant pairs,
    /// where the p-value is 1 either way).
    ChiSquared,
}

/// Result of a McNemar test between two classifiers evaluated on the same
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McNemar {
    /// Facts classifier A got right and B got wrong.
    pub b_only_wrong: usize,
    /// Facts classifier B got right and A got wrong.
    pub a_only_wrong: usize,
    /// The continuity-corrected chi-squared statistic
    /// `(|b − c| − 1)² / (b + c)`; reported for every sample size even
    /// when the p-value comes from the exact test.
    pub chi_squared: f64,
    /// Two-sided p-value, computed per [`McNemar::method`].
    pub p_value: f64,
    /// Which test produced [`McNemar::p_value`].
    pub method: McNemarMethod,
}

impl McNemar {
    /// `true` when the difference is significant at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// McNemar's test on paired predictions: do classifiers `a` and `b`
/// disagree with ground truth at different rates?
///
/// With no discordant pairs the statistic is 0 and the p-value 1 (the
/// classifiers are indistinguishable on this data). With fewer than 25
/// discordant pairs the χ² approximation is known to be unreliable, so
/// the p-value switches to the exact two-sided binomial test
/// `p = min(1, 2·P(X ≤ min(b, c)))` with `X ~ Bin(b + c, ½)`; the χ²
/// statistic is still reported for reference.
///
/// # Errors
/// [`CoreError::LengthMismatch`] if the three assignments differ in length.
pub fn mcnemar(
    a: &TruthAssignment,
    b: &TruthAssignment,
    truth: &TruthAssignment,
) -> Result<McNemar, CoreError> {
    if a.len() != truth.len() || b.len() != truth.len() {
        return Err(CoreError::LengthMismatch {
            what: "mcnemar inputs",
            expected: truth.len(),
            actual: a.len().max(b.len()),
        });
    }
    let mut b_only_wrong = 0usize; // a right, b wrong
    let mut a_only_wrong = 0usize; // b right, a wrong
    for i in 0..truth.len() {
        let t = truth.labels()[i];
        let ra = a.labels()[i] == t;
        let rb = b.labels()[i] == t;
        match (ra, rb) {
            (true, false) => b_only_wrong += 1,
            (false, true) => a_only_wrong += 1,
            _ => {}
        }
    }
    let discordant = b_only_wrong + a_only_wrong;
    let n = discordant as f64;
    let chi_squared = if discordant == 0 {
        0.0
    } else {
        let d = (b_only_wrong as f64 - a_only_wrong as f64).abs() - 1.0;
        let d = d.max(0.0);
        d * d / n
    };
    let (p_value, method) = if discordant > 0 && discordant < 25 {
        let p = exact_binomial_two_sided(b_only_wrong.min(a_only_wrong), discordant);
        (p, McNemarMethod::ExactBinomial)
    } else {
        (chi2_1df_sf(chi_squared), McNemarMethod::ChiSquared)
    };
    Ok(McNemar { b_only_wrong, a_only_wrong, chi_squared, p_value, method })
}

/// Two-sided binomial tail at fairness: `min(1, 2·P(X ≤ k))` for
/// `X ~ Bin(n, ½)`. Summed in log space via a running binomial
/// coefficient, so it stays exact-to-f64 for the small `n` it serves.
fn exact_binomial_two_sided(k: usize, n: usize) -> f64 {
    let mut coeff = 1.0f64; // C(n, 0)
    let mut tail = coeff;
    for i in 0..k {
        coeff *= (n - i) as f64 / (i + 1) as f64;
        tail += coeff;
    }
    (2.0 * tail * 0.5f64.powi(n as i32)).min(1.0)
}

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

/// Percentile-bootstrap confidence interval for the *accuracy* of a
/// prediction: resamples the compared facts with replacement.
///
/// Deterministic given `seed`. Useful for reporting whether quality
/// differences between methods on a golden set (e.g. the paper's
/// Table 4) exceed sampling noise.
///
/// # Errors
/// - [`CoreError::LengthMismatch`] on differing assignment lengths;
/// - [`CoreError::EmptyInput`] on an empty comparison;
/// - [`CoreError::InvalidConfig`] on a level outside `(0, 1)` or zero
///   resamples.
pub fn bootstrap_accuracy_ci(
    predicted: &TruthAssignment,
    truth: &TruthAssignment,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, CoreError> {
    if predicted.len() != truth.len() {
        return Err(CoreError::LengthMismatch {
            what: "bootstrap inputs",
            expected: truth.len(),
            actual: predicted.len(),
        });
    }
    let n = truth.len();
    if n == 0 {
        return Err(CoreError::EmptyInput { what: "bootstrap sample" });
    }
    if !(0.0 < level && level < 1.0) || resamples == 0 {
        return Err(CoreError::InvalidConfig {
            message: "bootstrap needs level in (0,1) and at least one resample".into(),
        });
    }
    let correct: Vec<bool> = (0..n).map(|i| predicted.labels()[i] == truth.labels()[i]).collect();
    let estimate = correct.iter().filter(|&&c| c).count() as f64 / n as f64;

    // SplitMix64 — tiny, deterministic, no external dependency needed in
    // the core crate.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut hits = 0usize;
        for _ in 0..n {
            let idx = (next() % n as u64) as usize;
            if correct[idx] {
                hits += 1;
            }
        }
        stats.push(hits as f64 / n as f64);
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| -> f64 {
        let idx = ((stats.len() as f64 - 1.0) * q).round() as usize;
        stats[idx]
    };
    Ok(BootstrapCi { estimate, lower: pick(alpha), upper: pick(1.0 - alpha), level })
}

/// Paired-bootstrap confidence interval for the *accuracy difference*
/// `acc(a) − acc(b)` of two classifiers on the same ground truth: both
/// predictions are resampled over the *same* fact indices, which respects
/// the pairing (the right comparison for Table-4-style method contests —
/// an interval excluding 0 means the gap exceeds sampling noise).
///
/// # Errors
/// As [`bootstrap_accuracy_ci`].
pub fn bootstrap_accuracy_diff_ci(
    a: &TruthAssignment,
    b: &TruthAssignment,
    truth: &TruthAssignment,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, CoreError> {
    if a.len() != truth.len() || b.len() != truth.len() {
        return Err(CoreError::LengthMismatch {
            what: "paired bootstrap inputs",
            expected: truth.len(),
            actual: a.len().max(b.len()),
        });
    }
    let n = truth.len();
    if n == 0 {
        return Err(CoreError::EmptyInput { what: "bootstrap sample" });
    }
    if !(0.0 < level && level < 1.0) || resamples == 0 {
        return Err(CoreError::InvalidConfig {
            message: "bootstrap needs level in (0,1) and at least one resample".into(),
        });
    }
    // +1 when only a is right, −1 when only b is right, 0 otherwise.
    let delta: Vec<i8> = (0..n)
        .map(|i| {
            let ra = a.labels()[i] == truth.labels()[i];
            let rb = b.labels()[i] == truth.labels()[i];
            i8::from(ra) - i8::from(rb)
        })
        .collect();
    let estimate = delta.iter().map(|&d| f64::from(d)).sum::<f64>() / n as f64;

    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0i64;
        for _ in 0..n {
            let idx = (next() % n as u64) as usize;
            sum += i64::from(delta[idx]);
        }
        stats.push(sum as f64 / n as f64);
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| -> f64 {
        let idx = ((stats.len() as f64 - 1.0) * q).round() as usize;
        stats[idx]
    };
    Ok(BootstrapCi { estimate, lower: pick(alpha), upper: pick(1.0 - alpha), level })
}

/// Survival function of the χ² distribution with 1 degree of freedom:
/// `P(X > x) = erfc(sqrt(x/2))`.
pub fn chi2_1df_sf(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    erfc((x / 2.0).sqrt())
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error ~1.5e−7 — ample for significance
/// testing).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138_089_935).abs() < 1e-6);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(4.0) < 1e-7);
    }

    #[test]
    fn chi2_survival_known_points() {
        // P(χ²(1) > 3.841) ≈ 0.05
        assert!((chi2_1df_sf(3.841) - 0.05).abs() < 1e-3);
        // P(χ²(1) > 10.83) ≈ 0.001
        assert!((chi2_1df_sf(10.83) - 0.001).abs() < 2e-4);
        assert_eq!(chi2_1df_sf(0.0), 1.0);
    }

    #[test]
    fn mcnemar_detects_one_sided_improvement() {
        let n = 200;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        // a is always right; b wrong on the first 40.
        let a = TruthAssignment::from_bools(&vec![true; n]);
        let b_bits: Vec<bool> = (0..n).map(|i| i >= 40).collect();
        let b = TruthAssignment::from_bools(&b_bits);
        let m = mcnemar(&a, &b, &truth).unwrap();
        assert_eq!(m.b_only_wrong, 40);
        assert_eq!(m.a_only_wrong, 0);
        assert!(m.significant_at(0.001), "p = {}", m.p_value);
    }

    #[test]
    fn mcnemar_identical_classifiers_not_significant() {
        let truth = TruthAssignment::from_bools(&[true, false, true]);
        let a = TruthAssignment::from_bools(&[true, true, true]);
        let m = mcnemar(&a, &a, &truth).unwrap();
        assert_eq!(m.chi_squared, 0.0);
        assert_eq!(m.p_value, 1.0);
        assert_eq!(m.method, McNemarMethod::ChiSquared);
        assert!(!m.significant_at(0.05));
    }

    #[test]
    fn mcnemar_small_samples_use_the_exact_binomial() {
        // b = 15, c = 2 discordant pairs: the χ² approximation is out of
        // its depth at n = 17, the exact two-sided binomial is
        // 2·(C(17,0) + C(17,1) + C(17,2))/2¹⁷ = 308/131072.
        let n = 30;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        // a errs only on 15..17; b errs only on 0..15.
        let a_bits: Vec<bool> = (0..n).map(|i| !(15..17).contains(&i)).collect();
        let b_bits: Vec<bool> = (0..n).map(|i| i >= 15).collect();
        let a = TruthAssignment::from_bools(&a_bits);
        let b = TruthAssignment::from_bools(&b_bits);
        let m = mcnemar(&a, &b, &truth).unwrap();
        assert_eq!((m.b_only_wrong, m.a_only_wrong), (15, 2));
        assert_eq!(m.method, McNemarMethod::ExactBinomial);
        assert!((m.p_value - 308.0 / 131072.0).abs() < 1e-12, "p = {}", m.p_value);
        // The χ² statistic is still reported: (|15−2|−1)²/17.
        assert!((m.chi_squared - 144.0 / 17.0).abs() < 1e-12);
        assert!(m.significant_at(0.01));
    }

    #[test]
    fn mcnemar_balanced_small_sample_caps_at_one() {
        // b = c = 3: the doubled tail exceeds 1 and must be clamped.
        let n = 6;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        let a_bits: Vec<bool> = (0..n).map(|i| i >= 3).collect();
        let b_bits: Vec<bool> = (0..n).map(|i| i < 3).collect();
        let a = TruthAssignment::from_bools(&a_bits);
        let b = TruthAssignment::from_bools(&b_bits);
        let m = mcnemar(&a, &b, &truth).unwrap();
        assert_eq!((m.b_only_wrong, m.a_only_wrong), (3, 3));
        assert_eq!(m.method, McNemarMethod::ExactBinomial);
        assert_eq!(m.p_value, 1.0);
        assert!(m.p_value.is_finite());
    }

    #[test]
    fn mcnemar_switches_back_to_chi_squared_at_25_discordant() {
        let n = 25;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        let a = TruthAssignment::from_bools(&vec![true; n]);
        let b = TruthAssignment::from_bools(&vec![false; n]);
        let m = mcnemar(&a, &b, &truth).unwrap();
        assert_eq!(m.b_only_wrong + m.a_only_wrong, 25);
        assert_eq!(m.method, McNemarMethod::ChiSquared);
        assert!(m.significant_at(0.001));
    }

    #[test]
    fn exact_binomial_matches_hand_computed_tails() {
        // n = 10, k = 2: 2·(1 + 10 + 45)/1024 = 112/1024.
        assert!((exact_binomial_two_sided(2, 10) - 112.0 / 1024.0).abs() < 1e-15);
        // k = 0: 2/2ⁿ.
        assert!((exact_binomial_two_sided(0, 8) - 2.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn mcnemar_length_mismatch() {
        let t = TruthAssignment::from_bools(&[true]);
        let a = TruthAssignment::from_bools(&[true, false]);
        assert!(mcnemar(&a, &a, &t).is_err());
    }

    #[test]
    fn bootstrap_ci_brackets_the_estimate() {
        let n = 200;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        // 80% accurate prediction.
        let bits: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
        let pred = TruthAssignment::from_bools(&bits);
        let ci = bootstrap_accuracy_ci(&pred, &truth, 500, 0.95, 7).unwrap();
        assert!((ci.estimate - 0.8).abs() < 1e-12);
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        // Rough binomial width sanity: ±2σ ≈ ±0.057 at n = 200.
        assert!(ci.upper - ci.lower < 0.2, "{ci:?}");
        assert!(ci.upper - ci.lower > 0.02, "{ci:?}");
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let truth = TruthAssignment::from_bools(&[true; 50]);
        let pred = TruthAssignment::from_bools(&[true; 50]);
        let a = bootstrap_accuracy_ci(&pred, &truth, 100, 0.9, 3).unwrap();
        let b = bootstrap_accuracy_ci(&pred, &truth, 100, 0.9, 3).unwrap();
        assert_eq!(a, b);
        // Perfect prediction → degenerate interval at 1.
        assert_eq!((a.lower, a.upper), (1.0, 1.0));
    }

    #[test]
    fn paired_bootstrap_detects_a_real_gap() {
        let n = 300;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        let a = TruthAssignment::from_bools(&vec![true; n]); // perfect
        let b_bits: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect(); // 75%
        let b = TruthAssignment::from_bools(&b_bits);
        let ci = bootstrap_accuracy_diff_ci(&a, &b, &truth, 500, 0.95, 11).unwrap();
        assert!((ci.estimate - 0.25).abs() < 1e-12);
        assert!(ci.lower > 0.0, "gap must be significant: {ci:?}");
    }

    #[test]
    fn paired_bootstrap_accepts_no_gap() {
        let n = 100;
        let truth = TruthAssignment::from_bools(&vec![true; n]);
        // a and b err on disjoint but equally-sized index sets.
        let a_bits: Vec<bool> = (0..n).map(|i| i % 10 != 0).collect();
        let b_bits: Vec<bool> = (0..n).map(|i| i % 10 != 1).collect();
        let a = TruthAssignment::from_bools(&a_bits);
        let b = TruthAssignment::from_bools(&b_bits);
        let ci = bootstrap_accuracy_diff_ci(&a, &b, &truth, 500, 0.95, 11).unwrap();
        assert_eq!(ci.estimate, 0.0);
        assert!(ci.lower <= 0.0 && 0.0 <= ci.upper, "{ci:?}");
    }

    #[test]
    fn bootstrap_rejects_bad_inputs() {
        let truth = TruthAssignment::from_bools(&[true]);
        let pred = TruthAssignment::from_bools(&[true, false]);
        assert!(bootstrap_accuracy_ci(&pred, &truth, 10, 0.9, 0).is_err());
        let empty = TruthAssignment::from_bools(&[]);
        assert!(bootstrap_accuracy_ci(&empty, &empty, 10, 0.9, 0).is_err());
        let one = TruthAssignment::from_bools(&[true]);
        assert!(bootstrap_accuracy_ci(&one, &one, 0, 0.9, 0).is_err());
        assert!(bootstrap_accuracy_ci(&one, &one, 10, 1.0, 0).is_err());
    }
}
