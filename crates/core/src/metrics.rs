//! Evaluation metrics (§6.1.2): precision, recall, accuracy, F1, trust-score
//! MSE, and the Hubdub "number of errors" metric.
//!
//! Conventions follow the paper: the *positive class* is `true` facts, so
//! precision is the fraction of predicted-true facts that are actually true
//! and recall is the fraction of actually-true facts predicted true.

use crate::error::CoreError;
use crate::truth::TruthAssignment;

/// 2×2 confusion matrix with `true` as the positive class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted true, actually true.
    pub tp: usize,
    /// Predicted true, actually false.
    pub fp: usize,
    /// Predicted false, actually false.
    pub tn: usize,
    /// Predicted false, actually true.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix by comparing a prediction to the ground truth.
    ///
    /// # Errors
    /// [`CoreError::LengthMismatch`] when the assignments cover different
    /// numbers of facts.
    pub fn from_assignments(
        predicted: &TruthAssignment,
        truth: &TruthAssignment,
    ) -> Result<Self, CoreError> {
        if predicted.len() != truth.len() {
            return Err(CoreError::LengthMismatch {
                what: "prediction vs ground truth",
                expected: truth.len(),
                actual: predicted.len(),
            });
        }
        let mut m = ConfusionMatrix::default();
        for (p, t) in predicted.labels().iter().zip(truth.labels()) {
            match (p.as_bool(), t.as_bool()) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        Ok(m)
    }

    /// Total number of facts compared.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted true
    /// (vacuous precision, the convention the paper's tables imply for
    /// degenerate predictors).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there are no true facts.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Accuracy `(tp + tn) / total`; 1.0 on an empty comparison.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// F1 — the harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// The Hubdub metric (§6.2.6): number of errors = `fp + fn`.
    pub fn errors(&self) -> usize {
        self.fp + self.fn_
    }

    /// Bundles the four headline metrics.
    pub fn summary(&self) -> QualitySummary {
        QualitySummary {
            precision: self.precision(),
            recall: self.recall(),
            accuracy: self.accuracy(),
            f1: self.f1(),
        }
    }
}

/// The four quality numbers the paper's Tables 2 and 4 report per method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySummary {
    /// Fraction of predicted-true facts that are actually true.
    pub precision: f64,
    /// Fraction of actually-true facts predicted true.
    pub recall: f64,
    /// Fraction of facts classified correctly.
    pub accuracy: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl std::fmt::Display for QualitySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.2} R={:.2} A={:.2} F1={:.2}",
            self.precision, self.recall, self.accuracy, self.f1
        )
    }
}

/// Brier score of probabilistic predictions: mean squared error between
/// the predicted truth probability and the 0/1 outcome. Lower is better;
/// 0.25 is the score of an uninformative constant 0.5.
///
/// The paper's tables only grade hard decisions; the Brier score grades
/// the *probabilities* the algorithms expose, separating methods that are
/// right-but-overconfident (rounded 2-Estimates) from calibrated ones.
///
/// # Errors
/// - [`CoreError::LengthMismatch`] on differing lengths;
/// - [`CoreError::EmptyInput`] on empty inputs.
pub fn brier_score(probabilities: &[f64], truth: &TruthAssignment) -> Result<f64, CoreError> {
    if probabilities.len() != truth.len() {
        return Err(CoreError::LengthMismatch {
            what: "probabilities vs ground truth",
            expected: truth.len(),
            actual: probabilities.len(),
        });
    }
    if probabilities.is_empty() {
        return Err(CoreError::EmptyInput { what: "Brier score" });
    }
    let sum: f64 = probabilities
        .iter()
        .zip(truth.labels())
        .map(|(&p, l)| {
            let y = if l.as_bool() { 1.0 } else { 0.0 };
            (p - y) * (p - y)
        })
        .sum();
    Ok(sum / probabilities.len() as f64)
}

/// One bin of a reliability (calibration) diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Mean predicted probability of the facts in the bin.
    pub mean_predicted: f64,
    /// Observed fraction of true facts in the bin.
    pub observed_true: f64,
    /// Number of facts in the bin.
    pub count: usize,
}

/// Equal-width reliability diagram over `[0, 1]`: facts are bucketed by
/// predicted probability; a calibrated predictor has
/// `observed_true ≈ mean_predicted` in every (populated) bin. Empty bins
/// are omitted.
///
/// # Errors
/// As [`brier_score`], plus [`CoreError::InvalidConfig`] for `n_bins = 0`.
pub fn calibration_bins(
    probabilities: &[f64],
    truth: &TruthAssignment,
    n_bins: usize,
) -> Result<Vec<CalibrationBin>, CoreError> {
    if probabilities.len() != truth.len() {
        return Err(CoreError::LengthMismatch {
            what: "probabilities vs ground truth",
            expected: truth.len(),
            actual: probabilities.len(),
        });
    }
    if n_bins == 0 {
        return Err(CoreError::InvalidConfig { message: "need at least one bin".into() });
    }
    let mut sum_p = vec![0.0; n_bins];
    let mut sum_true = vec![0.0; n_bins];
    let mut count = vec![0usize; n_bins];
    for (&p, l) in probabilities.iter().zip(truth.labels()) {
        let bin = ((p * n_bins as f64) as usize).min(n_bins - 1);
        sum_p[bin] += p;
        if l.as_bool() {
            sum_true[bin] += 1.0;
        }
        count[bin] += 1;
    }
    Ok((0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| CalibrationBin {
            mean_predicted: sum_p[b] / count[b] as f64,
            observed_true: sum_true[b] / count[b] as f64,
            count: count[b],
        })
        .collect())
}

/// Confusion matrix restricted to a subset of facts (e.g. a golden set):
/// the paper's Table 4 runs algorithms over the full crawl but scores them
/// on the 601 hand-checked listings.
///
/// # Errors
/// - [`CoreError::LengthMismatch`] when the assignments differ in length;
/// - [`CoreError::IdOutOfRange`] for subset ids outside the assignments.
pub fn confusion_on_subset(
    predicted: &TruthAssignment,
    truth: &TruthAssignment,
    subset: &[crate::ids::FactId],
) -> Result<ConfusionMatrix, CoreError> {
    if predicted.len() != truth.len() {
        return Err(CoreError::LengthMismatch {
            what: "prediction vs ground truth",
            expected: truth.len(),
            actual: predicted.len(),
        });
    }
    let mut m = ConfusionMatrix::default();
    for &f in subset {
        let p = predicted.get(f)?;
        let t = truth.get(f)?;
        match (p.as_bool(), t.as_bool()) {
            (true, true) => m.tp += 1,
            (true, false) => m.fp += 1,
            (false, false) => m.tn += 1,
            (false, true) => m.fn_ += 1,
        }
    }
    Ok(m)
}

/// Mean square error between reference trust scores and computed trust
/// scores (paper Equation 10, Table 5).
///
/// Entries where the reference is `None` (source silent on the golden set)
/// are skipped, mirroring the paper which only reports MSE over sources with
/// measured accuracy.
///
/// # Errors
/// - [`CoreError::LengthMismatch`] on differing lengths;
/// - [`CoreError::EmptyInput`] when no comparable entries remain.
pub fn trust_mse(reference: &[Option<f64>], computed: &[f64]) -> Result<f64, CoreError> {
    if reference.len() != computed.len() {
        return Err(CoreError::LengthMismatch {
            what: "trust MSE inputs",
            expected: reference.len(),
            actual: computed.len(),
        });
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (r, &c) in reference.iter().zip(computed) {
        if let Some(r) = r {
            let d = r - c;
            sum += d * d;
            n += 1;
        }
    }
    if n == 0 {
        return Err(CoreError::EmptyInput { what: "trust MSE (no reference scores)" });
    }
    Ok(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthAssignment;

    fn assign(bits: &[bool]) -> TruthAssignment {
        TruthAssignment::from_bools(bits)
    }

    #[test]
    fn confusion_matrix_cells() {
        let pred = assign(&[true, true, false, false, true]);
        let truth = assign(&[true, false, false, true, true]);
        let m = ConfusionMatrix::from_assignments(&pred, &truth).unwrap();
        assert_eq!(m, ConfusionMatrix { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(m.total(), 5);
        assert_eq!(m.errors(), 2);
    }

    #[test]
    fn metrics_formulae() {
        let m = ConfusionMatrix { tp: 7, fp: 2, tn: 3, fn_: 0 };
        assert!((m.precision() - 7.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.recall(), 1.0);
        assert!((m.accuracy() - 10.0 / 12.0).abs() < 1e-12);
        let f1 = 2.0 * (7.0 / 9.0) / (7.0 / 9.0 + 1.0);
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn motivating_example_numbers_from_table_2() {
        // "Our strategy": tp=7, fp=2, tn=3, fn=0 → P=0.78, R=1, A=0.83.
        let m = ConfusionMatrix { tp: 7, fp: 2, tn: 3, fn_: 0 };
        assert!((m.precision() - 0.78).abs() < 0.005);
        assert!((m.accuracy() - 0.83).abs() < 0.005);
        // TwoEstimate on the same data: predicts true for all but r12:
        // tp=7, fp=4, tn=1, fn=0 → P=0.64, A=0.67.
        let m = ConfusionMatrix { tp: 7, fp: 4, tn: 1, fn_: 0 };
        assert!((m.precision() - 0.64).abs() < 0.005);
        assert!((m.accuracy() - 0.67).abs() < 0.005);
    }

    #[test]
    fn degenerate_cases_follow_conventions() {
        let all_false_pred = ConfusionMatrix { tp: 0, fp: 0, tn: 2, fn_: 3 };
        assert_eq!(all_false_pred.precision(), 1.0);
        assert_eq!(all_false_pred.recall(), 0.0);
        assert_eq!(all_false_pred.f1(), 0.0);
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 1.0);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let a = assign(&[true]);
        let b = assign(&[true, false]);
        assert!(ConfusionMatrix::from_assignments(&a, &b).is_err());
    }

    #[test]
    fn brier_score_grades_probabilities() {
        let truth = assign(&[true, false]);
        // Perfect and confident.
        assert_eq!(brier_score(&[1.0, 0.0], &truth).unwrap(), 0.0);
        // Uninformative 0.5 everywhere.
        assert!((brier_score(&[0.5, 0.5], &truth).unwrap() - 0.25).abs() < 1e-12);
        // Confidently wrong is the worst.
        assert_eq!(brier_score(&[0.0, 1.0], &truth).unwrap(), 1.0);
        // A calibrated-but-soft prediction beats the coin.
        let soft = brier_score(&[0.8, 0.2], &truth).unwrap();
        assert!(soft < 0.25 && soft > 0.0);
        // Errors.
        assert!(brier_score(&[0.5], &truth).is_err());
        let empty = TruthAssignment::from_bools(&[]);
        assert!(brier_score(&[], &empty).is_err());
    }

    #[test]
    fn calibration_bins_group_by_probability() {
        // 10 facts at p = 0.2 (2 true), 10 at p = 0.9 (9 true): calibrated.
        let mut probs = Vec::new();
        let mut bits = Vec::new();
        for i in 0..10 {
            probs.push(0.2);
            bits.push(i < 2);
        }
        for i in 0..10 {
            probs.push(0.9);
            bits.push(i < 9);
        }
        let truth = assign(&bits);
        let bins = calibration_bins(&probs, &truth, 10).unwrap();
        assert_eq!(bins.len(), 2);
        assert!((bins[0].mean_predicted - 0.2).abs() < 1e-12);
        assert!((bins[0].observed_true - 0.2).abs() < 1e-12);
        assert_eq!(bins[0].count, 10);
        assert!((bins[1].observed_true - 0.9).abs() < 1e-12);
        // p = 1.0 lands in the top bin, not out of range.
        let bins = calibration_bins(&[1.0], &assign(&[true]), 4).unwrap();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 1);
        // Errors.
        assert!(calibration_bins(&[0.5], &assign(&[true]), 0).is_err());
        assert!(calibration_bins(&[0.5, 0.5], &assign(&[true]), 2).is_err());
    }

    #[test]
    fn subset_confusion_only_counts_listed_facts() {
        use crate::ids::FactId;
        let pred = assign(&[true, true, false, true]);
        let truth = assign(&[true, false, false, false]);
        let m = confusion_on_subset(&pred, &truth, &[FactId::new(0), FactId::new(1)]).unwrap();
        assert_eq!(m, ConfusionMatrix { tp: 1, fp: 1, tn: 0, fn_: 0 });
        // Out-of-range subset id is an error, not a panic.
        assert!(confusion_on_subset(&pred, &truth, &[FactId::new(9)]).is_err());
        // Empty subset is legal and yields the empty matrix.
        let empty = confusion_on_subset(&pred, &truth, &[]).unwrap();
        assert_eq!(empty.total(), 0);
    }

    #[test]
    fn mse_skips_unmeasured_sources() {
        let reference = [Some(0.6), None, Some(0.9)];
        let computed = [0.5, 0.123, 1.0];
        let mse = trust_mse(&reference, &computed).unwrap();
        assert!((mse - (0.01 + 0.01) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mse_error_cases() {
        assert!(trust_mse(&[Some(0.5)], &[0.5, 0.6]).is_err());
        assert!(trust_mse(&[None, None], &[0.5, 0.6]).is_err());
    }

    #[test]
    fn summary_display() {
        let s = ConfusionMatrix { tp: 1, fp: 0, tn: 1, fn_: 0 }.summary();
        assert_eq!(s.to_string(), "P=1.00 R=1.00 A=1.00 F1=1.00");
    }
}
