//! Signature-hash shard partition over fact groups.
//!
//! The fact group (§5.1) is the independent unit of IncEstimate selection:
//! facts in a group share one vote signature, and every per-round cache
//! (Corrob probability, entropy, dirty flag) is keyed by group. A
//! [`ShardPlan`] partitions the canonical group list into `S` shards by a
//! stable FNV-1a hash of each group's canonical signature, so per-shard
//! engine state can be refreshed and scanned by independent workers and
//! merged back in fixed shard order.
//!
//! Two properties matter for determinism:
//!
//! - **Seed independence** — the shard of a group depends only on its
//!   canonical signature bytes and the shard count, never on dataset
//!   iteration order, RNG state, thread count, or pointer identity. The
//!   same dataset partitions identically on every machine and every run.
//! - **Merge neutrality** — shard membership never influences results:
//!   per-shard winners carry their canonical group index, and the merge
//!   reduction (fixed shard order, positional tie-breaks on the canonical
//!   index) reproduces the sequential scan's argmax bit for bit. The plan
//!   is therefore free to choose any `S ≥ 1`.

use crate::groups::FactGroup;
use crate::vote::{SourceVote, Vote};

/// Location of a group inside a [`ShardPlan`]: which shard owns it and at
/// which slot of that shard's member list it sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoc {
    /// Owning shard, `< ShardPlan::n_shards()`.
    pub shard: u32,
    /// Position in the owning shard's member list (ascending group order).
    pub slot: u32,
}

/// Stable shard assignment for one canonical signature: FNV-1a over the
/// `(source, vote)` entries, reduced modulo `n_shards`.
///
/// The hash eats each source index as 8 little-endian bytes followed by one
/// polarity byte, so it is a pure function of the canonical signature —
/// independent of seeds, machines, and shard-plan construction order. The
/// empty signature (voteless facts) hashes to the FNV offset basis.
pub fn signature_shard(signature: &[SourceVote], n_shards: usize) -> usize {
    debug_assert!(n_shards > 0, "shard count must be at least 1");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    };
    for sv in signature {
        for byte in (sv.source.index() as u64).to_le_bytes() {
            eat(byte);
        }
        eat(match sv.vote {
            Vote::True => 1,
            Vote::False => 2,
        });
    }
    (hash % n_shards as u64) as usize
}

/// A deterministic partition of the canonical group list into shards.
///
/// Built once per run; group indices are stable for the lifetime of the
/// plan (groups drain to empty rather than being removed), so the
/// group→shard mapping never needs maintenance.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per group: owning shard and slot.
    loc: Vec<ShardLoc>,
    /// Per shard: owned group indices, ascending (construction visits
    /// groups in canonical order).
    members: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `groups` into `n_shards` shards by signature hash.
    ///
    /// `n_shards` is clamped to `[1, max(1, groups.len())]`: more shards
    /// than groups would only allocate empty shards without adding any
    /// exploitable parallelism, and results are shard-count independent by
    /// construction.
    pub fn build(groups: &[FactGroup], n_shards: usize) -> Self {
        let n_shards = n_shards.clamp(1, groups.len().max(1));
        let mut members = vec![Vec::new(); n_shards];
        let mut loc = Vec::with_capacity(groups.len());
        for (gi, group) in groups.iter().enumerate() {
            let shard = signature_shard(&group.signature, n_shards);
            loc.push(ShardLoc { shard: shard as u32, slot: members[shard].len() as u32 });
            members[shard].push(gi);
        }
        Self { loc, members }
    }

    /// Number of shards (effective count after clamping, always ≥ 1).
    pub fn n_shards(&self) -> usize {
        self.members.len()
    }

    /// Number of groups covered by the plan.
    pub fn n_groups(&self) -> usize {
        self.loc.len()
    }

    /// Location of group `gi`.
    #[inline]
    pub fn loc(&self, gi: usize) -> ShardLoc {
        self.loc[gi]
    }

    /// The group indices owned by `shard`, ascending.
    #[inline]
    pub fn members(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// Number of groups owned by `shard`.
    pub fn load(&self, shard: usize) -> usize {
        self.members[shard].len()
    }

    /// Groups owned by the fullest shard.
    pub fn max_load(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Groups owned by the emptiest shard.
    pub fn min_load(&self) -> usize {
        self.members.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Load spread `max_load − min_load` — 0 means a perfectly balanced
    /// partition. Deterministic for a given dataset and shard count, so it
    /// is safe to emit as a counter in golden-gated reports.
    pub fn imbalance(&self) -> usize {
        self.max_load() - self.min_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::group_by_signature;
    use crate::ids::{FactId, SourceId};
    use crate::vote::VoteMatrixBuilder;

    fn sample_groups(n_facts: usize) -> Vec<FactGroup> {
        let n_sources = 5;
        let mut b = VoteMatrixBuilder::new(n_sources, n_facts);
        for f in 0..n_facts {
            for s in 0..n_sources {
                // Deterministic varied signatures without RNG.
                match (f * 7 + s * 3) % 5 {
                    0 => b.cast(SourceId::new(s), FactId::new(f), Vote::True).unwrap(),
                    1 => b.cast(SourceId::new(s), FactId::new(f), Vote::False).unwrap(),
                    _ => {}
                }
            }
        }
        let m = b.build();
        let facts: Vec<FactId> = m.facts().collect();
        group_by_signature(&m, &facts)
    }

    #[test]
    fn every_group_lands_in_exactly_one_shard() {
        let groups = sample_groups(64);
        for shards in [1, 2, 7, 64] {
            let plan = ShardPlan::build(&groups, shards);
            let mut seen = vec![false; groups.len()];
            for s in 0..plan.n_shards() {
                for (slot, &gi) in plan.members(s).iter().enumerate() {
                    assert!(!seen[gi], "group {gi} owned twice");
                    seen[gi] = true;
                    assert_eq!(plan.loc(gi), ShardLoc { shard: s as u32, slot: slot as u32 });
                }
            }
            assert!(seen.iter().all(|&s| s));
            assert_eq!(plan.n_groups(), groups.len());
            let total: usize = (0..plan.n_shards()).map(|s| plan.load(s)).sum();
            assert_eq!(total, groups.len());
        }
    }

    #[test]
    fn assignment_is_a_pure_function_of_the_signature() {
        let groups = sample_groups(48);
        let plan_a = ShardPlan::build(&groups, 8);
        // Rebuilding from re-derived groups (fresh allocations, same
        // canonical content) must reproduce the identical partition.
        let plan_b = ShardPlan::build(&groups.to_vec(), 8);
        for gi in 0..groups.len() {
            assert_eq!(plan_a.loc(gi), plan_b.loc(gi));
        }
        for sig in groups.iter().map(|g| &g.signature) {
            let s = signature_shard(sig, 8);
            assert_eq!(s, signature_shard(&sig.clone(), 8));
            assert!(s < 8);
        }
    }

    #[test]
    fn members_are_ascending_and_loads_consistent() {
        let groups = sample_groups(64);
        let plan = ShardPlan::build(&groups, 7);
        for s in 0..plan.n_shards() {
            assert!(plan.members(s).windows(2).all(|w| w[0] < w[1]));
        }
        assert!(plan.max_load() >= plan.min_load());
        assert_eq!(plan.imbalance(), plan.max_load() - plan.min_load());
    }

    #[test]
    fn shard_count_is_clamped_to_the_group_count() {
        let groups = sample_groups(6);
        let plan = ShardPlan::build(&groups, 1024);
        assert_eq!(plan.n_shards(), groups.len());
        let empty = ShardPlan::build(&[], 8);
        assert_eq!(empty.n_shards(), 1);
        assert_eq!(empty.n_groups(), 0);
        assert_eq!(ShardPlan::build(&groups, 0).n_shards(), 1);
    }

    #[test]
    fn empty_signature_hashes_stably() {
        assert_eq!(signature_shard(&[], 1), 0);
        let a = signature_shard(&[], 1 << 20);
        assert_eq!(a, signature_shard(&[], 1 << 20));
    }
}
