//! Trust scores: single-value snapshots and multi-value trajectories.
//!
//! The paper's key idea (§4) is that a source should not carry one global
//! trust score: IncEstimate maintains an *incrementally calculated* trust
//! score — a sequence of per-source values `σ_0(s), σ_1(s), …` where
//! `σ_i(s)` reflects the source's accuracy over the facts evaluated before
//! time point `t_i`. [`TrustSnapshot`] is one column of that sequence;
//! [`TrustTrajectory`] is the whole matrix (what Figure 2 plots).

use crate::error::{check_probability, CoreError};
use crate::ids::SourceId;

/// Per-source trust values at one time point (or the single global trust of
/// a one-shot algorithm).
#[derive(Debug, Clone, PartialEq)]
pub struct TrustSnapshot {
    values: Vec<f64>,
}

impl TrustSnapshot {
    /// Uniform snapshot with every source at `value` (the paper's default
    /// initial trust is 0.9).
    ///
    /// # Errors
    /// [`CoreError::InvalidProbability`] if `value ∉ [0, 1]`.
    pub fn uniform(n_sources: usize, value: f64) -> Result<Self, CoreError> {
        check_probability("trust score", value)?;
        Ok(Self { values: vec![value; n_sources] })
    }

    /// Snapshot from explicit per-source values.
    ///
    /// # Errors
    /// [`CoreError::InvalidProbability`] on any value outside `[0, 1]`.
    pub fn from_values(values: Vec<f64>) -> Result<Self, CoreError> {
        for &v in &values {
            check_probability("trust score", v)?;
        }
        Ok(Self { values })
    }

    /// Number of sources covered.
    pub fn n_sources(&self) -> usize {
        self.values.len()
    }

    /// Trust of `source`.
    #[inline]
    pub fn trust(&self, source: SourceId) -> f64 {
        self.values[source.index()]
    }

    /// Mutable access used by algorithms updating scores in place.
    #[inline]
    pub fn set(&mut self, source: SourceId, value: f64) {
        debug_assert!((0.0..=1.0).contains(&value), "trust {value} out of [0,1] for {source}");
        self.values[source.index()] = value.clamp(0.0, 1.0);
    }

    /// Slice view, indexed by source id.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A *positive source* has trust in `(0.5, 1]` (§3.1): more correct
    /// votes than incorrect ones.
    pub fn is_positive(&self, source: SourceId) -> bool {
        self.trust(source) > 0.5
    }

    /// A *negative source* has trust in `[0, 0.5)`.
    pub fn is_negative(&self, source: SourceId) -> bool {
        self.trust(source) < 0.5
    }

    /// Largest absolute difference to another snapshot — the convergence
    /// residual used by iterative algorithms.
    ///
    /// # Panics
    /// Panics (debug assertion) if the snapshots cover different numbers of
    /// sources; they always come from the same dataset.
    pub fn max_abs_diff(&self, other: &TrustSnapshot) -> f64 {
        debug_assert_eq!(self.values.len(), other.values.len());
        self.values.iter().zip(&other.values).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

/// The full multi-value trust history of an IncEstimate run: one
/// [`TrustSnapshot`] per time point, starting with the initial snapshot at
/// `t_0`.
#[derive(Debug, Clone, Default)]
pub struct TrustTrajectory {
    snapshots: Vec<TrustSnapshot>,
}

impl TrustTrajectory {
    /// Empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the snapshot used at the next time point.
    pub fn push(&mut self, snapshot: TrustSnapshot) {
        self.snapshots.push(snapshot);
    }

    /// Number of recorded time points.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Snapshot at time point `t` (0-based).
    pub fn at(&self, t: usize) -> Option<&TrustSnapshot> {
        self.snapshots.get(t)
    }

    /// The last snapshot — the trust scores "at the end of the last time
    /// point, which reflects trustworthiness over the entire dataset"
    /// (§6.2.3, used for the paper's Table 5 MSE).
    pub fn last(&self) -> Option<&TrustSnapshot> {
        self.snapshots.last()
    }

    /// The trust series of one source across all time points — one line of
    /// the paper's Figure 2.
    pub fn series(&self, source: SourceId) -> Vec<f64> {
        self.snapshots.iter().map(|s| s.trust(source)).collect()
    }

    /// Iterator over snapshots in time order.
    pub fn iter(&self) -> impl Iterator<Item = &TrustSnapshot> {
        self.snapshots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: usize) -> SourceId {
        SourceId::new(i)
    }

    #[test]
    fn uniform_snapshot() {
        let s = TrustSnapshot::uniform(3, 0.9).unwrap();
        assert_eq!(s.n_sources(), 3);
        assert_eq!(s.trust(sid(2)), 0.9);
        assert!(TrustSnapshot::uniform(1, 1.2).is_err());
    }

    #[test]
    fn from_values_validates() {
        assert!(TrustSnapshot::from_values(vec![0.0, 1.0, 0.5]).is_ok());
        assert!(TrustSnapshot::from_values(vec![0.5, -0.1]).is_err());
        assert!(TrustSnapshot::from_values(vec![f64::NAN]).is_err());
    }

    #[test]
    fn positive_negative_classification_matches_section_3_1() {
        let s = TrustSnapshot::from_values(vec![0.9, 0.5, 0.1]).unwrap();
        assert!(s.is_positive(sid(0)));
        assert!(!s.is_positive(sid(1)) && !s.is_negative(sid(1)));
        assert!(s.is_negative(sid(2)));
    }

    #[test]
    fn set_clamps_in_release_mode() {
        let mut s = TrustSnapshot::uniform(1, 0.5).unwrap();
        s.set(sid(0), 0.75);
        assert_eq!(s.trust(sid(0)), 0.75);
    }

    #[test]
    fn residual_is_max_abs_componentwise_diff() {
        let a = TrustSnapshot::from_values(vec![0.2, 0.9]).unwrap();
        let b = TrustSnapshot::from_values(vec![0.25, 0.6]).unwrap();
        assert!((a.max_abs_diff(&b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn trajectory_records_series_per_source() {
        let mut tr = TrustTrajectory::new();
        tr.push(TrustSnapshot::from_values(vec![0.9, 0.9]).unwrap());
        tr.push(TrustSnapshot::from_values(vec![1.0, 0.0]).unwrap());
        tr.push(TrustSnapshot::from_values(vec![0.67, 0.7]).unwrap());
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.series(sid(1)), vec![0.9, 0.0, 0.7]);
        assert_eq!(tr.last().unwrap().trust(sid(0)), 0.67);
        assert_eq!(tr.at(1).unwrap().trust(sid(0)), 1.0);
        assert!(tr.at(3).is_none());
    }
}
