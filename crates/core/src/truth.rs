//! Truth labels and assignments.

use crate::error::CoreError;
use crate::ids::FactId;

/// The (binary) truth value of a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The fact holds in the real world.
    True,
    /// The fact is erroneous.
    False,
}

impl Label {
    /// Boolean polarity (`True` → `true`).
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, Label::True)
    }

    /// Builds a label from a boolean polarity.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Label::True
        } else {
            Label::False
        }
    }

    /// The paper's decision rule (Equation 2): `true` iff `σ(f) ≥ 0.5`.
    #[inline]
    pub fn from_probability(p: f64) -> Self {
        Label::from_bool(p >= 0.5)
    }
}

/// A complete truth assignment over the facts of a dataset.
///
/// Used both for ground truth (when known) and for the hard decisions an
/// algorithm derives from its probabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthAssignment {
    labels: Vec<Label>,
}

impl TruthAssignment {
    /// Builds an assignment from per-fact labels (indexed by fact id).
    pub fn new(labels: Vec<Label>) -> Self {
        Self { labels }
    }

    /// Builds an assignment by thresholding per-fact probabilities at 0.5.
    pub fn from_probabilities(probs: &[f64]) -> Self {
        Self { labels: probs.iter().map(|&p| Label::from_probability(p)).collect() }
    }

    /// Builds an assignment from booleans (`true` → [`Label::True`]).
    pub fn from_bools(bools: &[bool]) -> Self {
        Self { labels: bools.iter().map(|&b| Label::from_bool(b)).collect() }
    }

    /// Number of facts labelled.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the assignment covers no facts.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of `fact`.
    ///
    /// # Panics
    /// Panics if `fact` is out of range; assignments are always constructed
    /// dataset-sized.
    #[inline]
    pub fn label(&self, fact: FactId) -> Label {
        self.labels[fact.index()]
    }

    /// Checked access for callers holding ids of unknown provenance.
    pub fn get(&self, fact: FactId) -> Result<Label, CoreError> {
        self.labels.get(fact.index()).copied().ok_or(CoreError::IdOutOfRange {
            kind: "fact",
            index: fact.index(),
            len: self.labels.len(),
        })
    }

    /// Slice view of the labels, indexed by fact id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Count of facts labelled true.
    pub fn n_true(&self) -> usize {
        self.labels.iter().filter(|l| l.as_bool()).count()
    }

    /// Count of facts labelled false.
    pub fn n_false(&self) -> usize {
        self.len() - self.n_true()
    }

    /// Iterator over `(fact, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, Label)> + '_ {
        self.labels.iter().enumerate().map(|(i, &l)| (FactId::new(i), l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_rule_matches_paper_equation_2() {
        assert_eq!(Label::from_probability(0.5), Label::True);
        assert_eq!(Label::from_probability(0.499_999), Label::False);
        assert_eq!(Label::from_probability(1.0), Label::True);
        assert_eq!(Label::from_probability(0.0), Label::False);
    }

    #[test]
    fn assignment_counts_and_access() {
        let a = TruthAssignment::from_bools(&[true, false, true]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.n_true(), 2);
        assert_eq!(a.n_false(), 1);
        assert_eq!(a.label(FactId::new(1)), Label::False);
        assert!(a.get(FactId::new(3)).is_err());
    }

    #[test]
    fn from_probabilities_thresholds_each_entry() {
        let a = TruthAssignment::from_probabilities(&[0.9, 0.1, 0.5]);
        assert_eq!(a.labels(), &[Label::True, Label::False, Label::True]);
    }

    #[test]
    fn iter_pairs_labels_with_ids() {
        let a = TruthAssignment::from_bools(&[false, true]);
        let v: Vec<_> = a.iter().collect();
        assert_eq!(v[0], (FactId::new(0), Label::False));
        assert_eq!(v[1], (FactId::new(1), Label::True));
    }
}
