//! # corroborate-core
//!
//! Core data model and measurement toolkit for the `corroborate` workspace —
//! a from-scratch reproduction of *“Corroborating Facts from Affirmative
//! Statements”* (Wu & Marian, EDBT 2014).
//!
//! The paper studies *truth discovery* in the regime where almost every fact
//! receives only affirmative (`T`) votes, so there is no conflict for
//! classical corroboration algorithms to learn from. This crate provides the
//! vocabulary everything else builds on:
//!
//! - [`ids`] — typed [`SourceId`](ids::SourceId) / [`FactId`](ids::FactId) /
//!   [`QuestionId`](ids::QuestionId) identifiers;
//! - [`vote`] — votes and the sparse, doubly-indexed [`VoteMatrix`](vote::VoteMatrix);
//! - [`dataset`] — [`Dataset`](dataset::Dataset) instances with optional
//!   ground truth and multi-answer question structure;
//! - [`truth`] — labels and assignments, with the paper's 0.5 decision rule;
//! - [`trust`] — single-snapshot and multi-value
//!   ([`TrustTrajectory`](trust::TrustTrajectory)) trust scores;
//! - [`entropy`] — binary/collective entropy (paper Equation 3);
//! - [`scoring`] — the `Corrob` rule (Equation 5);
//! - [`groups`] — fact groups keyed by vote signature (§5.1);
//! - [`index`] — the source→group inverted index behind IncEstimate's
//!   incremental scoring engine;
//! - [`shard`] — the deterministic signature-hash partition of fact groups
//!   behind the sharded parallel engine;
//! - [`metrics`] / [`stats`] — precision/recall/accuracy/F1, trust-score
//!   MSE (Equation 10), Hubdub error counts, and McNemar significance;
//! - [`corroborator`] — the [`Corroborator`](corroborator::Corroborator)
//!   trait implemented by every algorithm in `corroborate-algorithms`.
//!
//! ## Example
//!
//! ```
//! use corroborate_core::prelude::*;
//!
//! let mut b = DatasetBuilder::new();
//! let yelp = b.add_source("Yelp");
//! let ypages = b.add_source("Yellowpages");
//! let r1 = b.add_fact_with_truth("Danny's Grand Sea Palace", Label::False);
//! b.cast(yelp, r1, Vote::True).unwrap();
//! b.cast(ypages, r1, Vote::True).unwrap();
//! let ds = b.build().unwrap();
//!
//! // Two affirmative statements — and yet the fact is false: the paper's
//! // Example 1. Under uniform trust the Corrob score cannot see that.
//! let trust = TrustSnapshot::uniform(ds.n_sources(), 0.9).unwrap();
//! let p = corroborate_core::scoring::corrob_probability(
//!     ds.votes().votes_on(r1), &trust).unwrap();
//! assert!(p >= 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod corroborator;
pub mod dataset;
pub mod entropy;
pub mod error;
pub mod groups;
pub mod ids;
pub mod index;
pub mod io;
pub mod metrics;
pub mod questions;
pub mod scoring;
pub mod shard;
pub mod stats;
pub mod trust;
pub mod truth;
pub mod vote;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::corroborator::{CorroborationResult, Corroborator};
    pub use crate::dataset::{Dataset, DatasetBuilder};
    pub use crate::error::CoreError;
    pub use crate::ids::{FactId, QuestionId, SourceId};
    pub use crate::metrics::{ConfusionMatrix, QualitySummary};
    pub use crate::trust::{TrustSnapshot, TrustTrajectory};
    pub use crate::truth::{Label, TruthAssignment};
    pub use crate::vote::{Vote, VoteMatrix, VoteMatrixBuilder};
}
