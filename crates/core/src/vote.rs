//! Votes and the sparse vote matrix.
//!
//! A *vote* is a source's statement about a fact: affirmative (`T`),
//! disagreeing (`F`), or absent (`-`, the source says nothing). The paper's
//! central regime is one where almost every fact receives only `T` votes.
//!
//! [`VoteMatrix`] stores the votes sparsely in both orientations —
//! fact→votes and source→votes — because corroboration algorithms alternate
//! between "score each fact from its sources" and "score each source from
//! its facts".

use crate::error::CoreError;
use crate::ids::{FactId, SourceId};

/// A single source's statement about a single fact.
///
/// The paper's Equation (1): `T` if the source agrees, `F` if it disagrees.
/// Absent votes are represented by *absence from the matrix*, not by a
/// variant, so iteration never visits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vote {
    /// Affirmative statement: the source supports the fact being true.
    True,
    /// Disagreeing statement: the source claims the fact is false.
    False,
}

impl Vote {
    /// Returns the vote supporting the opposite polarity.
    #[inline]
    pub fn negated(self) -> Self {
        match self {
            Vote::True => Vote::False,
            Vote::False => Vote::True,
        }
    }

    /// `true` for an affirmative (`T`) vote.
    #[inline]
    pub fn is_affirmative(self) -> bool {
        matches!(self, Vote::True)
    }

    /// The polarity as a boolean (`T` → `true`).
    #[inline]
    pub fn as_bool(self) -> bool {
        self.is_affirmative()
    }

    /// Builds a vote from a boolean polarity.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Vote::True
        } else {
            Vote::False
        }
    }

    /// One-character representation used by debug dumps (`T` / `F`).
    #[inline]
    pub fn symbol(self) -> char {
        match self {
            Vote::True => 'T',
            Vote::False => 'F',
        }
    }
}

/// A `(source, vote)` posting attached to a fact.
///
/// Ordered by `(source, vote)` — the canonical signature order, which makes
/// signature slices directly comparable without rebuilding key tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceVote {
    /// The source casting the vote.
    pub source: SourceId,
    /// The vote cast.
    pub vote: Vote,
}

/// A `(fact, vote)` posting attached to a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactVote {
    /// The fact voted on.
    pub fact: FactId,
    /// The vote cast.
    pub vote: Vote,
}

/// Sparse matrix of votes, indexed both by fact and by source.
///
/// Construct with [`VoteMatrixBuilder`]; the built matrix is immutable,
/// which lets algorithms share it freely (`&VoteMatrix`) without locking.
///
/// Invariants (enforced by the builder):
/// - postings within a fact are sorted by source id and deduplicated;
/// - postings within a source are sorted by fact id;
/// - both orientations describe the same set of votes.
#[derive(Debug, Clone, PartialEq)]
pub struct VoteMatrix {
    n_sources: usize,
    n_facts: usize,
    by_fact: Vec<Vec<SourceVote>>,
    by_source: Vec<Vec<FactVote>>,
    n_votes: usize,
}

impl VoteMatrix {
    /// Number of sources (rows of the conceptual dense matrix).
    #[inline]
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// Number of facts (columns of the conceptual dense matrix).
    #[inline]
    pub fn n_facts(&self) -> usize {
        self.n_facts
    }

    /// Total number of non-absent votes.
    #[inline]
    pub fn n_votes(&self) -> usize {
        self.n_votes
    }

    /// The votes cast on `fact`, sorted by source id.
    #[inline]
    pub fn votes_on(&self, fact: FactId) -> &[SourceVote] {
        &self.by_fact[fact.index()]
    }

    /// The votes cast by `source`, sorted by fact id.
    #[inline]
    pub fn votes_by(&self, source: SourceId) -> &[FactVote] {
        &self.by_source[source.index()]
    }

    /// The vote of `source` on `fact`, or `None` if the source is silent.
    pub fn vote(&self, source: SourceId, fact: FactId) -> Option<Vote> {
        let postings = &self.by_fact[fact.index()];
        postings.binary_search_by_key(&source, |sv| sv.source).ok().map(|i| postings[i].vote)
    }

    /// Iterator over all fact ids.
    pub fn facts(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.n_facts).map(FactId::new)
    }

    /// Iterator over all source ids.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        (0..self.n_sources).map(SourceId::new)
    }

    /// `true` if `fact` received only affirmative votes (and at least one).
    ///
    /// Facts in the paper's set `F*` satisfy this predicate.
    pub fn is_affirmative_only(&self, fact: FactId) -> bool {
        let votes = self.votes_on(fact);
        !votes.is_empty() && votes.iter().all(|sv| sv.vote.is_affirmative())
    }

    /// Number of facts in `F*` (affirmative-only facts).
    pub fn affirmative_only_count(&self) -> usize {
        self.facts().filter(|&f| self.is_affirmative_only(f)).count()
    }

    /// Counts `(n_true, n_false)` votes on `fact`.
    pub fn tally(&self, fact: FactId) -> (usize, usize) {
        let mut t = 0;
        let mut f = 0;
        for sv in self.votes_on(fact) {
            match sv.vote {
                Vote::True => t += 1,
                Vote::False => f += 1,
            }
        }
        (t, f)
    }

    /// Fraction of a source's votes that are affirmative; `None` when the
    /// source casts no votes.
    pub fn affirmative_rate(&self, source: SourceId) -> Option<f64> {
        let votes = self.votes_by(source);
        if votes.is_empty() {
            return None;
        }
        let t = votes.iter().filter(|fv| fv.vote.is_affirmative()).count();
        Some(t as f64 / votes.len() as f64)
    }

    /// The canonical *signature* of a fact: its `(source, vote)` postings.
    ///
    /// Two facts with equal signatures receive votes from exactly the same
    /// sources with the same polarities; the IncEstimate algorithms group
    /// facts by this signature.
    pub fn signature(&self, fact: FactId) -> &[SourceVote] {
        self.votes_on(fact)
    }
}

/// Builder for [`VoteMatrix`].
///
/// ```
/// use corroborate_core::vote::{VoteMatrixBuilder, Vote};
/// use corroborate_core::ids::{SourceId, FactId};
///
/// let mut b = VoteMatrixBuilder::new(2, 3);
/// b.cast(SourceId::new(0), FactId::new(1), Vote::True).unwrap();
/// b.cast(SourceId::new(1), FactId::new(1), Vote::False).unwrap();
/// let m = b.build();
/// assert_eq!(m.n_votes(), 2);
/// assert_eq!(m.tally(FactId::new(1)), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct VoteMatrixBuilder {
    n_sources: usize,
    n_facts: usize,
    by_fact: Vec<Vec<SourceVote>>,
}

impl VoteMatrixBuilder {
    /// Creates an empty builder for `n_sources × n_facts`.
    pub fn new(n_sources: usize, n_facts: usize) -> Self {
        Self { n_sources, n_facts, by_fact: vec![Vec::new(); n_facts] }
    }

    /// Records a vote. Casting twice for the same `(source, fact)` pair
    /// replaces the earlier vote (last writer wins), mirroring a crawler
    /// that re-observes a listing.
    ///
    /// # Errors
    /// Returns [`CoreError::IdOutOfRange`] if either id is outside the
    /// dimensions given at construction.
    pub fn cast(&mut self, source: SourceId, fact: FactId, vote: Vote) -> Result<(), CoreError> {
        if source.index() >= self.n_sources {
            return Err(CoreError::IdOutOfRange {
                kind: "source",
                index: source.index(),
                len: self.n_sources,
            });
        }
        if fact.index() >= self.n_facts {
            return Err(CoreError::IdOutOfRange {
                kind: "fact",
                index: fact.index(),
                len: self.n_facts,
            });
        }
        let postings = &mut self.by_fact[fact.index()];
        if let Some(existing) = postings.iter_mut().find(|sv| sv.source == source) {
            existing.vote = vote;
        } else {
            postings.push(SourceVote { source, vote });
        }
        Ok(())
    }

    /// Number of votes currently recorded.
    pub fn n_votes(&self) -> usize {
        self.by_fact.iter().map(Vec::len).sum()
    }

    /// Finalises the matrix, establishing both orientations and the sorted
    /// postings invariant.
    pub fn build(self) -> VoteMatrix {
        let mut by_fact = self.by_fact;
        let mut by_source: Vec<Vec<FactVote>> = vec![Vec::new(); self.n_sources];
        let mut n_votes = 0;
        for (fi, postings) in by_fact.iter_mut().enumerate() {
            postings.sort_by_key(|sv| sv.source);
            n_votes += postings.len();
            for sv in postings.iter() {
                by_source[sv.source.index()]
                    .push(FactVote { fact: FactId::new(fi), vote: sv.vote });
            }
        }
        // by_source postings are already sorted by fact because we visited
        // facts in increasing order.
        VoteMatrix { n_sources: self.n_sources, n_facts: self.n_facts, by_fact, by_source, n_votes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: usize) -> SourceId {
        SourceId::new(i)
    }
    fn fid(i: usize) -> FactId {
        FactId::new(i)
    }

    #[test]
    fn vote_negation_and_bool_roundtrip() {
        assert_eq!(Vote::True.negated(), Vote::False);
        assert_eq!(Vote::False.negated(), Vote::True);
        assert_eq!(Vote::from_bool(Vote::True.as_bool()), Vote::True);
        assert_eq!(Vote::from_bool(Vote::False.as_bool()), Vote::False);
        assert_eq!(Vote::True.symbol(), 'T');
        assert_eq!(Vote::False.symbol(), 'F');
    }

    #[test]
    fn builder_rejects_out_of_range_ids() {
        let mut b = VoteMatrixBuilder::new(1, 1);
        assert!(b.cast(sid(1), fid(0), Vote::True).is_err());
        assert!(b.cast(sid(0), fid(1), Vote::True).is_err());
        assert!(b.cast(sid(0), fid(0), Vote::True).is_ok());
    }

    #[test]
    fn last_vote_wins_on_recast() {
        let mut b = VoteMatrixBuilder::new(1, 1);
        b.cast(sid(0), fid(0), Vote::True).unwrap();
        b.cast(sid(0), fid(0), Vote::False).unwrap();
        let m = b.build();
        assert_eq!(m.n_votes(), 1);
        assert_eq!(m.vote(sid(0), fid(0)), Some(Vote::False));
    }

    #[test]
    fn both_orientations_agree() {
        let mut b = VoteMatrixBuilder::new(3, 4);
        b.cast(sid(2), fid(0), Vote::True).unwrap();
        b.cast(sid(0), fid(0), Vote::False).unwrap();
        b.cast(sid(1), fid(3), Vote::True).unwrap();
        let m = b.build();
        // by-fact postings sorted by source.
        assert_eq!(
            m.votes_on(fid(0)),
            &[
                SourceVote { source: sid(0), vote: Vote::False },
                SourceVote { source: sid(2), vote: Vote::True },
            ]
        );
        // by-source orientation contains the same votes.
        assert_eq!(m.votes_by(sid(2)), &[FactVote { fact: fid(0), vote: Vote::True }]);
        assert_eq!(m.vote(sid(1), fid(3)), Some(Vote::True));
        assert_eq!(m.vote(sid(1), fid(0)), None);
    }

    #[test]
    fn affirmative_only_classification() {
        let mut b = VoteMatrixBuilder::new(2, 3);
        b.cast(sid(0), fid(0), Vote::True).unwrap();
        b.cast(sid(1), fid(0), Vote::True).unwrap();
        b.cast(sid(0), fid(1), Vote::True).unwrap();
        b.cast(sid(1), fid(1), Vote::False).unwrap();
        // fid(2) has no votes.
        let m = b.build();
        assert!(m.is_affirmative_only(fid(0)));
        assert!(!m.is_affirmative_only(fid(1)));
        assert!(!m.is_affirmative_only(fid(2)));
        assert_eq!(m.affirmative_only_count(), 1);
    }

    #[test]
    fn tally_counts_polarities() {
        let mut b = VoteMatrixBuilder::new(3, 1);
        b.cast(sid(0), fid(0), Vote::True).unwrap();
        b.cast(sid(1), fid(0), Vote::False).unwrap();
        b.cast(sid(2), fid(0), Vote::False).unwrap();
        let m = b.build();
        assert_eq!(m.tally(fid(0)), (1, 2));
    }

    #[test]
    fn affirmative_rate_handles_silent_sources() {
        let mut b = VoteMatrixBuilder::new(2, 2);
        b.cast(sid(0), fid(0), Vote::True).unwrap();
        b.cast(sid(0), fid(1), Vote::False).unwrap();
        let m = b.build();
        assert_eq!(m.affirmative_rate(sid(0)), Some(0.5));
        assert_eq!(m.affirmative_rate(sid(1)), None);
    }
}
