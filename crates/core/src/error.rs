//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by the core data model and by corroboration algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An id referenced an element outside the dataset's dimensions.
    IdOutOfRange {
        /// `"source"`, `"fact"` or `"question"`.
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The arena length it was checked against.
        len: usize,
    },
    /// Two collections that must be parallel (same length) were not.
    LengthMismatch {
        /// What the collections describe.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Observed length.
        actual: usize,
    },
    /// A probability or trust score fell outside `[0, 1]`.
    InvalidProbability {
        /// Role of the value (e.g. `"initial trust"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An algorithm-specific configuration value was invalid.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// An iterative algorithm failed to converge within its iteration cap.
    ///
    /// Algorithms generally treat the cap as a soft stop and return the last
    /// iterate; this error is only raised when the caller opted into strict
    /// convergence checking.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// The dataset is missing a component the operation requires
    /// (e.g. ground truth for evaluation, question structure for
    /// multi-answer corroboration).
    MissingComponent {
        /// The missing component.
        what: &'static str,
    },
    /// The operation received an empty input it cannot handle.
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IdOutOfRange { kind, index, len } => {
                write!(f, "{kind} id {index} out of range (dataset has {len})")
            }
            CoreError::LengthMismatch { what, expected, actual } => {
                write!(f, "{what}: expected length {expected}, got {actual}")
            }
            CoreError::InvalidProbability { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            CoreError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            CoreError::NoConvergence { iterations, residual } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual:.3e})")
            }
            CoreError::MissingComponent { what } => {
                write!(f, "dataset is missing required component: {what}")
            }
            CoreError::EmptyInput { what } => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Validates that `value` is a probability, tagging errors with `what`.
pub fn check_probability(what: &'static str, value: f64) -> Result<(), CoreError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(CoreError::InvalidProbability { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::IdOutOfRange { kind: "fact", index: 9, len: 3 };
        assert_eq!(e.to_string(), "fact id 9 out of range (dataset has 3)");
        let e = CoreError::InvalidProbability { what: "initial trust", value: 1.5 };
        assert!(e.to_string().contains("[0, 1]"));
        let e = CoreError::NoConvergence { iterations: 10, residual: 0.5 };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn check_probability_accepts_unit_interval() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", 0.5).is_ok());
    }

    #[test]
    fn check_probability_rejects_out_of_range_and_nan() {
        assert!(check_probability("p", -0.01).is_err());
        assert!(check_probability("p", 1.01).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
        assert!(check_probability("p", f64::INFINITY).is_err());
    }
}
