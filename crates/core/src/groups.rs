//! Fact groups: facts sharing an identical vote signature.
//!
//! "We first group unevaluated facts based on the sources of the votes.
//! Facts in the same group receive votes from the same set of sources"
//! (§5.1). The group is the unit IncEstimate's selection strategies rank and
//! evaluate; two facts with equal signatures necessarily receive the same
//! Corrob probability under any trust snapshot.

use std::collections::HashMap;

use crate::ids::FactId;
use crate::vote::{SourceVote, VoteMatrix};

/// A group of facts with an identical `(source, vote)` signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FactGroup {
    /// The shared signature, sorted by source id (canonical form).
    pub signature: Vec<SourceVote>,
    /// Members, sorted by fact id.
    pub facts: Vec<FactId>,
}

impl FactGroup {
    /// Number of member facts (the paper's `size(FG)`).
    pub fn size(&self) -> usize {
        self.facts.len()
    }
}

/// Groups `facts` by vote signature.
///
/// Output is deterministic: groups are sorted by canonical signature
/// (lexicographically by `(source, vote)`), members by fact id. Facts with
/// empty signatures (no votes) form their own group, placed first.
pub fn group_by_signature(matrix: &VoteMatrix, facts: &[FactId]) -> Vec<FactGroup> {
    let mut map: HashMap<&[SourceVote], Vec<FactId>> = HashMap::with_capacity(facts.len());
    for &f in facts {
        map.entry(matrix.signature(f)).or_default().push(f);
    }
    let mut groups: Vec<FactGroup> = map
        .into_iter()
        .map(|(sig, mut members)| {
            members.sort_unstable();
            FactGroup { signature: sig.to_vec(), facts: members }
        })
        .collect();
    // `SourceVote: Ord` by (source, vote) — signatures compare directly,
    // with no per-comparison key-tuple rebuild.
    groups.sort_unstable_by(|a, b| a.signature.cmp(&b.signature));
    groups
}

/// Upper bound on the number of distinct non-trivial signatures for
/// `n_sources` sources: `3^|S| − 2^|S| − 1` (§5.3 — each source votes
/// T/F/−, excluding signatures with at most one vote... the paper excludes
/// "fact groups with only one vote or no vote"; we expose the raw bound and
/// let callers subtract what their setting excludes).
///
/// Saturates at `usize::MAX` for large `n_sources`.
pub fn max_fact_groups(n_sources: u32) -> usize {
    let Some(three) = 3usize.checked_pow(n_sources) else {
        return usize::MAX;
    };
    let two = 2usize.checked_pow(n_sources).expect("2^n < 3^n which fit");
    three - two - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SourceId;
    use crate::vote::{Vote, VoteMatrixBuilder};

    fn sid(i: usize) -> SourceId {
        SourceId::new(i)
    }
    fn fid(i: usize) -> FactId {
        FactId::new(i)
    }

    fn matrix() -> VoteMatrix {
        // f0: s0 T, s1 T      f1: s0 T, s1 T  (same group)
        // f2: s0 T, s1 F      f3: (no votes)  f4: s1 T
        let mut b = VoteMatrixBuilder::new(2, 5);
        b.cast(sid(0), fid(0), Vote::True).unwrap();
        b.cast(sid(1), fid(0), Vote::True).unwrap();
        b.cast(sid(0), fid(1), Vote::True).unwrap();
        b.cast(sid(1), fid(1), Vote::True).unwrap();
        b.cast(sid(0), fid(2), Vote::True).unwrap();
        b.cast(sid(1), fid(2), Vote::False).unwrap();
        b.cast(sid(1), fid(4), Vote::True).unwrap();
        b.build()
    }

    #[test]
    fn groups_by_exact_signature() {
        let m = matrix();
        let all: Vec<FactId> = m.facts().collect();
        let groups = group_by_signature(&m, &all);
        assert_eq!(groups.len(), 4);
        // First group: empty signature (f3).
        assert!(groups[0].signature.is_empty());
        assert_eq!(groups[0].facts, vec![fid(3)]);
        // Same-signature facts share a group.
        let tt = groups.iter().find(|g| g.facts.contains(&fid(0))).unwrap();
        assert_eq!(tt.facts, vec![fid(0), fid(1)]);
        assert_eq!(tt.size(), 2);
        // Polarity matters: f2 (T,F) is not grouped with f0 (T,T).
        assert!(!tt.facts.contains(&fid(2)));
    }

    #[test]
    fn grouping_respects_the_requested_subset() {
        let m = matrix();
        let groups = group_by_signature(&m, &[fid(1), fid(2)]);
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(FactGroup::size).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn deterministic_ordering() {
        let m = matrix();
        let all: Vec<FactId> = m.facts().collect();
        let a = group_by_signature(&m, &all);
        let b = group_by_signature(&m, &all);
        assert_eq!(a, b);
    }

    #[test]
    fn group_count_bound() {
        assert_eq!(max_fact_groups(2), 9 - 4 - 1);
        assert_eq!(max_fact_groups(5), 243 - 32 - 1);
        // Saturation, not overflow.
        assert_eq!(max_fact_groups(64), usize::MAX);
    }
}
