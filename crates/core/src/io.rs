//! Plain-text dataset interchange: a minimal CSV dialect for votes and
//! ground truth, so corroboration problems can be round-tripped to disk
//! and fed in from external crawls without pulling in a serialisation
//! framework.
//!
//! ## Votes file
//!
//! One vote per line, `source,fact,vote` with `vote ∈ {T, F}`; a header
//! line `source,fact,vote` is optional. Sources and facts are registered
//! in order of first appearance. Blank lines and `#` comments are
//! skipped. Fields containing commas or quotes are double-quoted with
//! `""` escaping.
//!
//! ```text
//! # NYC crawl, Feb 2012
//! source,fact,vote
//! YellowPages,"Danny's Grand Sea Palace",T
//! MenuPages,"Danny's Grand Sea Palace",F
//! ```
//!
//! ## Truth file
//!
//! `fact,label` with `label ∈ {true, false}` (case-insensitive); facts not
//! present in the votes file are added as voteless facts.
//!
//! ## Sources roster (sidecar)
//!
//! The votes file can only mention sources that cast at least one vote, so
//! a dataset containing *voteless* sources (registered crawl feeds that
//! contributed nothing yet — common in streaming ingestion) does not
//! survive a votes-only round trip. The optional roster sidecar closes the
//! gap: one source name per line (header line `source` optional), with the
//! same quoting rules as the other files. Roster sources are registered
//! first, in roster order, so a [`sources_to_csv`] → [`dataset_from_csv_full`]
//! round trip preserves source ids exactly. Sources that appear in the
//! votes file but not in the roster are appended in order of first
//! appearance, as before.
//!
//! (Voteless *and* unlabelled facts remain unrepresentable — they carry no
//! information any corroborator can use.)

use std::collections::HashMap;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::CoreError;
use crate::ids::{FactId, SourceId};
use crate::truth::Label;
use crate::vote::Vote;

/// Escapes a CSV field (quotes when it contains a comma, quote or
/// newline).
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits one CSV line into fields, honouring double-quoted fields with
/// `""` escapes.
///
/// # Errors
/// [`CoreError::InvalidConfig`] on an unterminated quote.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, CoreError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(CoreError::InvalidConfig {
            message: format!("line {line_no}: unterminated quoted field"),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Serialises a dataset's votes to the CSV dialect (with header).
pub fn votes_to_csv(dataset: &Dataset) -> String {
    let mut out = String::from("source,fact,vote\n");
    for f in dataset.facts() {
        for sv in dataset.votes().votes_on(f) {
            out.push_str(&escape(dataset.source_name(sv.source)));
            out.push(',');
            out.push_str(&escape(dataset.fact_name(f)));
            out.push(',');
            out.push(sv.vote.symbol());
            out.push('\n');
        }
    }
    out
}

/// Serialises a dataset's ground truth (if any) to the truth CSV.
///
/// # Errors
/// [`CoreError::MissingComponent`] when the dataset carries no truth.
pub fn truth_to_csv(dataset: &Dataset) -> Result<String, CoreError> {
    let truth = dataset.require_ground_truth()?;
    let mut out = String::from("fact,label\n");
    for (f, label) in truth.iter() {
        out.push_str(&escape(dataset.fact_name(f)));
        out.push(',');
        out.push_str(if label.as_bool() { "true" } else { "false" });
        out.push('\n');
    }
    Ok(out)
}

/// Serialises the full source roster (one name per line, with header) —
/// the sidecar that lets voteless sources survive a round trip.
pub fn sources_to_csv(dataset: &Dataset) -> String {
    let mut out = String::from("source\n");
    for s in dataset.sources() {
        out.push_str(&escape(dataset.source_name(s)));
        out.push('\n');
    }
    out
}

/// Parses a votes CSV (and optional truth CSV) into a dataset.
///
/// Equivalent to [`dataset_from_csv_full`] without a sources roster: only
/// sources that cast at least one vote are registered.
///
/// # Errors
/// - [`CoreError::InvalidConfig`] on malformed lines, unknown vote
///   symbols, or labels in the truth file that are neither `true` nor
///   `false`.
pub fn dataset_from_csv(votes_csv: &str, truth_csv: Option<&str>) -> Result<Dataset, CoreError> {
    dataset_from_csv_full(votes_csv, truth_csv, None)
}

/// Parses a votes CSV, optional truth CSV, and optional sources-roster
/// sidecar (see the module docs) into a dataset.
///
/// Roster sources are registered first, in roster order; duplicate roster
/// entries are rejected. Sources appearing only in the votes file are
/// appended in order of first appearance.
///
/// # Errors
/// - [`CoreError::InvalidConfig`] on malformed lines, unknown vote
///   symbols, bad truth labels, or duplicate roster entries.
pub fn dataset_from_csv_full(
    votes_csv: &str,
    truth_csv: Option<&str>,
    sources_csv: Option<&str>,
) -> Result<Dataset, CoreError> {
    let mut b = DatasetBuilder::new();
    let mut sources: HashMap<String, SourceId> = HashMap::new();
    let mut facts: HashMap<String, FactId> = HashMap::new();
    let mut truth: HashMap<String, Label> = HashMap::new();

    if let Some(sources_csv) = sources_csv {
        for (line_no, line) in sources_csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields = split_line(line, line_no + 1)?;
            if fields.len() != 1 {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "roster line {}: expected 1 field, got {}",
                        line_no + 1,
                        fields.len()
                    ),
                });
            }
            if fields[0] == "source" {
                // Header row (wherever comments put it).
                continue;
            }
            if sources.contains_key(&fields[0]) {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "roster line {}: duplicate source {:?}",
                        line_no + 1,
                        fields[0]
                    ),
                });
            }
            let s = b.add_source(&fields[0]);
            sources.insert(fields[0].clone(), s);
        }
    }

    if let Some(truth_csv) = truth_csv {
        for (line_no, line) in truth_csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields = split_line(line, line_no + 1)?;
            if fields.len() != 2 {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "truth line {}: expected 2 fields, got {}",
                        line_no + 1,
                        fields.len()
                    ),
                });
            }
            if fields[0] == "fact" && fields[1] == "label" {
                // Header row (wherever comments put it).
                continue;
            }
            let label = match fields[1].to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Label::True,
                "false" | "f" | "0" => Label::False,
                other => {
                    return Err(CoreError::InvalidConfig {
                        message: format!("truth line {}: unknown label {other:?}", line_no + 1),
                    })
                }
            };
            truth.insert(fields[0].clone(), label);
        }
    }

    let register_fact =
        |b: &mut DatasetBuilder, facts: &mut HashMap<String, FactId>, name: &str| -> FactId {
            if let Some(&f) = facts.get(name) {
                return f;
            }
            let f = match truth.get(name) {
                Some(&label) => b.add_fact_with_truth(name.to_string(), label),
                None => b.add_fact(name.to_string()),
            };
            facts.insert(name.to_string(), f);
            f
        };

    for (line_no, line) in votes_csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(line, line_no + 1)?;
        if fields.len() != 3 {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "votes line {}: expected 3 fields, got {}",
                    line_no + 1,
                    fields.len()
                ),
            });
        }
        if fields[0] == "source" && fields[1] == "fact" && fields[2] == "vote" {
            // Header row (wherever comments put it).
            continue;
        }
        let vote = match fields[2].to_ascii_uppercase().as_str() {
            "T" => Vote::True,
            "F" => Vote::False,
            other => {
                return Err(CoreError::InvalidConfig {
                    message: format!("votes line {}: unknown vote {other:?}", line_no + 1),
                })
            }
        };
        let s = *sources.entry(fields[0].clone()).or_insert_with(|| b.add_source(&fields[0]));
        let f = register_fact(&mut b, &mut facts, &fields[1]);
        b.cast(s, f, vote)?;
    }

    // Truth-only facts (labelled but unvoted) become voteless facts,
    // added in sorted-name order so parsing is deterministic.
    let mut leftover: Vec<(&String, Label)> = truth
        .iter()
        .filter(|(name, _)| !facts.contains_key(*name))
        .map(|(name, &label)| (name, label))
        .collect();
    leftover.sort_by(|a, b| a.0.cmp(b.0));
    for (name, label) in leftover {
        b.add_fact_with_truth(name.clone(), label);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let yp = b.add_source("YellowPages");
        let mp = b.add_source("Menu,Pages"); // comma forces quoting
        let f0 = b.add_fact_with_truth("Danny's \"Grand\" Palace", Label::False);
        let f1 = b.add_fact_with_truth("M Bar", Label::True);
        b.cast(yp, f0, Vote::True).unwrap();
        b.cast(mp, f0, Vote::False).unwrap();
        b.cast(mp, f1, Vote::True).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn votes_round_trip_through_csv() {
        let ds = sample();
        let votes = votes_to_csv(&ds);
        let truth = truth_to_csv(&ds).unwrap();
        let back = dataset_from_csv(&votes, Some(&truth)).unwrap();
        assert_eq!(back.n_sources(), 2);
        assert_eq!(back.n_facts(), 2);
        assert_eq!(back.votes().n_votes(), 3);
        // Names and votes survive quoting.
        let danny = back.facts().find(|&f| back.fact_name(f).contains("Grand")).unwrap();
        assert_eq!(back.votes().tally(danny), (1, 1));
        assert!(!back.ground_truth().unwrap().label(danny).as_bool());
    }

    #[test]
    fn header_and_comments_are_skipped() {
        let csv = "# a comment\nsource,fact,vote\nA,f1,T\n\nB,f1,F\n";
        let ds = dataset_from_csv(csv, None).unwrap();
        assert_eq!(ds.n_sources(), 2);
        assert_eq!(ds.n_facts(), 1);
        assert_eq!(ds.votes().tally(FactId::new(0)), (1, 1));
    }

    #[test]
    fn truth_only_facts_become_voteless() {
        let ds = dataset_from_csv("A,f1,T\n", Some("fact,label\nf1,true\nf2,false\n")).unwrap();
        assert_eq!(ds.n_facts(), 2);
        let f2 = ds.facts().find(|&f| ds.fact_name(f) == "f2").unwrap();
        assert!(ds.votes().votes_on(f2).is_empty());
        assert!(!ds.ground_truth().unwrap().label(f2).as_bool());
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        let e = dataset_from_csv("A,f1\n", None).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = dataset_from_csv("A,f1,X\n", None).unwrap_err();
        assert!(e.to_string().contains("unknown vote"), "{e}");
        let e = dataset_from_csv("\"A,f1,T\n", None).unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        let e = dataset_from_csv("A,f1,T\n", Some("f1,maybe\n")).unwrap_err();
        assert!(e.to_string().contains("unknown label"), "{e}");
    }

    #[test]
    fn vote_case_is_insensitive() {
        let ds = dataset_from_csv("A,f1,t\nB,f1,f\n", None).unwrap();
        assert_eq!(ds.votes().tally(FactId::new(0)), (1, 1));
    }

    #[test]
    fn quoted_fields_with_escaped_quotes() {
        let csv = "\"Source \"\"X\"\"\",\"fact, with comma\",T\n";
        let ds = dataset_from_csv(csv, None).unwrap();
        assert_eq!(ds.source_name(SourceId::new(0)), "Source \"X\"");
        assert_eq!(ds.fact_name(FactId::new(0)), "fact, with comma");
    }

    #[test]
    fn roster_round_trips_voteless_sources() {
        let mut b = DatasetBuilder::new();
        let active = b.add_source("active");
        b.add_source("silent,comma"); // voteless, needs quoting
        b.add_source("silent-b");
        let f = b.add_fact_with_truth("f1", Label::True);
        b.cast(active, f, Vote::True).unwrap();
        let ds = b.build().unwrap();

        // Votes-only parse drops the silent sources...
        let narrow = dataset_from_csv(&votes_to_csv(&ds), None).unwrap();
        assert_eq!(narrow.n_sources(), 1);

        // ...the roster sidecar preserves them, ids and all.
        let roster = sources_to_csv(&ds);
        let back = dataset_from_csv_full(&votes_to_csv(&ds), None, Some(&roster)).unwrap();
        assert_eq!(back.n_sources(), 3);
        for s in ds.sources() {
            assert_eq!(back.source_name(s), ds.source_name(s));
        }
        assert!(back.votes().votes_by(SourceId::new(1)).is_empty());
        // The sidecar itself is a fixpoint.
        assert_eq!(sources_to_csv(&back), roster);
    }

    #[test]
    fn roster_header_and_comments_are_skipped() {
        let roster = "# registered feeds\nsource\nA\n\nB\n";
        let ds = dataset_from_csv_full("A,f1,T\n", None, Some(roster)).unwrap();
        assert_eq!(ds.n_sources(), 2);
        assert_eq!(ds.source_name(SourceId::new(0)), "A");
        assert_eq!(ds.source_name(SourceId::new(1)), "B");
    }

    #[test]
    fn votes_only_sources_append_after_the_roster() {
        let ds = dataset_from_csv_full("C,f1,T\nA,f1,F\n", None, Some("source\nA\nB\n")).unwrap();
        assert_eq!(ds.n_sources(), 3);
        assert_eq!(ds.source_name(SourceId::new(0)), "A");
        assert_eq!(ds.source_name(SourceId::new(1)), "B");
        assert_eq!(ds.source_name(SourceId::new(2)), "C");
        assert_eq!(ds.votes().tally(FactId::new(0)), (1, 1));
    }

    #[test]
    fn malformed_rosters_are_rejected() {
        let e = dataset_from_csv_full("", None, Some("A\nA\n")).unwrap_err();
        assert!(e.to_string().contains("duplicate source"), "{e}");
        let e = dataset_from_csv_full("", None, Some("A,B\n")).unwrap_err();
        assert!(e.to_string().contains("expected 1 field"), "{e}");
        let e = dataset_from_csv_full("", None, Some("\"A\n")).unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
    }

    #[test]
    fn truth_export_requires_ground_truth() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("unlabelled");
        let ds = b.build().unwrap();
        assert!(truth_to_csv(&ds).is_err());
    }
}
