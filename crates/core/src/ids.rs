//! Strongly-typed identifiers for sources, facts and questions.
//!
//! All identifiers are dense indices into the owning [`Dataset`](crate::dataset::Dataset)'s
//! arenas. Using newtypes instead of raw `usize` prevents an entire class of
//! index-mixup bugs (e.g. indexing a per-source table with a fact id) at zero
//! runtime cost.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32` (datasets are bounded
            /// at ~4 billion entries, far above anything this library
            /// targets).
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(
                    u32::try_from(index).is_ok(),
                    concat!(stringify!($name), " index overflows u32")
                );
                Self(index as u32)
            }

            /// Returns the dense index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a source (e.g. a web site casting votes).
    SourceId,
    "s"
);
define_id!(
    /// Identifier of a fact (a binary statement about the world).
    FactId,
    "f"
);
define_id!(
    /// Identifier of a multi-answer question (Hubdub-style datasets).
    QuestionId,
    "q"
);

/// Iterator over all ids `0..len` of a given id type.
///
/// Convenience used pervasively by algorithms that sweep every source or
/// every fact of a dataset.
pub fn id_range<I: From<IdIndex>>(len: usize) -> impl Iterator<Item = I> {
    (0..len).map(|i| I::from(IdIndex(i)))
}

/// Opaque wrapper used by [`id_range`] to convert indices into ids without
/// exposing a public `From<usize>` (which would defeat the newtype purpose).
#[derive(Debug, Clone, Copy)]
pub struct IdIndex(usize);

impl From<IdIndex> for SourceId {
    fn from(i: IdIndex) -> Self {
        SourceId::new(i.0)
    }
}
impl From<IdIndex> for FactId {
    fn from(i: IdIndex) -> Self {
        FactId::new(i.0)
    }
}
impl From<IdIndex> for QuestionId {
    fn from(i: IdIndex) -> Self {
        QuestionId::new(i.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let s = SourceId::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(usize::from(s), 7);
        let f = FactId::new(0);
        assert_eq!(f.index(), 0);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(SourceId::new(3).to_string(), "s3");
        assert_eq!(FactId::new(12).to_string(), "f12");
        assert_eq!(QuestionId::new(5).to_string(), "q5");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(FactId::new(1) < FactId::new(2));
        assert_eq!(SourceId::new(4), SourceId::new(4));
    }

    #[test]
    fn id_range_yields_dense_ids() {
        let v: Vec<SourceId> = id_range(3).collect();
        assert_eq!(v, vec![SourceId::new(0), SourceId::new(1), SourceId::new(2)]);
    }
}
