//! **AccuVote** — truth discovery with source-dependence detection,
//! after Dong, Berti-Équille & Srivastava (PVLDB 2009), cited in the
//! paper's related work (§7: "Dong et al. investigate dependence among
//! sources and assign a higher weight to independent sources").
//!
//! Copiers are the blind spot of every voting-flavoured method: a false
//! fact repeated by two mirrors of the same bad directory looks thrice
//! corroborated. AccuVote interleaves three estimates until the trust
//! vector stabilises:
//!
//! 1. **Dependence detection** — for each source pair, the posterior
//!    probability that one copies the other, from the Bayesian evidence
//!    ratio of their vote overlap: sharing a *false* value is strong
//!    evidence of copying (independent sources err independently),
//!    sharing a true value is weak evidence, disagreeing is evidence of
//!    independence. With error rate `ε`, copy rate `c` and prior `α`
//!    (binary facts, single wrong value):
//!
//!    ```text
//!    P(both true | ¬D) = (1−ε)²          P(both true | D) = (1−ε)c + (1−ε)²(1−c)
//!    P(same false| ¬D) = ε²              P(same false| D) = εc + ε²(1−c)
//!    P(differ    | ¬D) = 1 − Pt − Pf     P(differ    | D) = (1−c)·P(differ|¬D)
//!    ```
//!
//!    Correctness is judged against the current iteration's decisions,
//!    and **only facts decided with confidence** (`|p − 0.5| ≥ margin`)
//!    contribute evidence — on uncertain facts "shared false value"
//!    cannot be distinguished from "jointly right in the minority", and
//!    counting them flags honest corroborating sources as copiers (it
//!    also makes the first iteration dependence-free, breaking the
//!    cold-start circularity).
//! 2. **Vote discounting** — on each fact, voters are counted in
//!    decreasing-trust order and each voter's weight is damped by
//!    `Π (1 − c·P(D | s, s'))` over the higher-trust voters `s'` already
//!    counted: a probable copier adds almost nothing beyond its original.
//! 3. **Truth + trust** — facts are scored with the discount-weighted
//!    Corrob rule; source trust is the fraction of votes matching the
//!    rounded outcomes, like the other iterative methods here.

use corroborate_core::prelude::*;

use crate::convergence::IterationControl;

/// Configuration for [`AccuVote`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuVoteConfig {
    /// Prior probability `α` that an arbitrary source pair is dependent.
    pub dependence_prior: f64,
    /// Probability `c` that a dependent source copies a particular value
    /// (also the strength of the per-copier vote discount).
    pub copy_rate: f64,
    /// Assumed base error rate `ε` of an independent source.
    pub error_rate: f64,
    /// Facts with `|p − 0.5| <` this margin are excluded from dependence
    /// evidence (see the module docs).
    pub confidence_margin: f64,
    /// Minimum number of overlapping *confident* votes before a pair is
    /// scored (tiny overlaps give noisy posteriors).
    pub min_overlap: usize,
    /// Initial trust for every source.
    pub initial_trust: f64,
    /// Probability reported for voteless facts.
    pub voteless_prior: f64,
    /// Iteration cap and convergence tolerance.
    pub iteration: IterationControl,
}

impl Default for AccuVoteConfig {
    fn default() -> Self {
        Self {
            dependence_prior: 0.1,
            copy_rate: 0.4,
            error_rate: 0.2,
            confidence_margin: 0.15,
            min_overlap: 3,
            initial_trust: 0.9,
            voteless_prior: 0.5,
            iteration: IterationControl { max_iterations: 20, tolerance: 1e-6 },
        }
    }
}

impl AccuVoteConfig {
    fn validate(&self) -> Result<(), CoreError> {
        for (what, v) in [
            ("dependence prior", self.dependence_prior),
            ("copy rate", self.copy_rate),
            ("error rate", self.error_rate),
            ("initial trust", self.initial_trust),
            ("voteless prior", self.voteless_prior),
        ] {
            corroborate_core::error::check_probability(what, v)?;
        }
        if self.error_rate == 0.0 || self.error_rate == 1.0 {
            return Err(CoreError::InvalidConfig {
                message: "error rate must be strictly inside (0, 1)".into(),
            });
        }
        if self.dependence_prior == 0.0 || self.dependence_prior == 1.0 {
            return Err(CoreError::InvalidConfig {
                message: "dependence prior must be strictly inside (0, 1)".into(),
            });
        }
        if !(0.0..0.5).contains(&self.confidence_margin) {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "confidence margin must be in [0, 0.5), got {}",
                    self.confidence_margin
                ),
            });
        }
        self.iteration.validate()
    }
}

/// Dependence-aware corroborator. See the module-level documentation.
#[derive(Debug, Clone, Default)]
pub struct AccuVote {
    config: AccuVoteConfig,
}

impl AccuVote {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: AccuVoteConfig) -> Self {
        Self { config }
    }

    /// Pairwise dependence posteriors under the current probabilities;
    /// symmetric matrix indexed `[s1][s2]`, zero diagonal.
    #[allow(clippy::needless_range_loop)] // symmetric [a][b] writes
    fn dependence_matrix(&self, dataset: &Dataset, probs: &[f64]) -> Vec<Vec<f64>> {
        let cfg = &self.config;
        let n = dataset.n_sources();
        let eps = cfg.error_rate;
        let c = cfg.copy_rate;
        let pt_i = (1.0 - eps) * (1.0 - eps);
        let pf_i = eps * eps;
        let pd_i = (1.0 - pt_i - pf_i).max(1e-12);
        let pt_d = (1.0 - eps) * c + pt_i * (1.0 - c);
        let pf_d = eps * c + pf_i * (1.0 - c);
        let pd_d = ((1.0 - c) * pd_i).max(1e-12);
        let lr_true = (pt_d / pt_i).ln();
        let lr_false = (pf_d / pf_i).ln();
        let lr_diff = (pd_d / pd_i).ln();
        let prior_logit = (cfg.dependence_prior / (1.0 - cfg.dependence_prior)).ln();

        let mut m = vec![vec![0.0; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let va = dataset.votes().votes_by(SourceId::new(a));
                let vb = dataset.votes().votes_by(SourceId::new(b));
                // Merge the sorted posting lists, counting confident
                // shared-true / shared-false / differing outcomes.
                let (mut i, mut j) = (0, 0);
                let (mut k_true, mut k_false, mut k_diff) = (0usize, 0usize, 0usize);
                while i < va.len() && j < vb.len() {
                    match va[i].fact.cmp(&vb[j].fact) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let p = probs[va[i].fact.index()];
                            if (p - 0.5).abs() >= cfg.confidence_margin {
                                let truth = p >= 0.5;
                                if va[i].vote == vb[j].vote {
                                    if va[i].vote.as_bool() == truth {
                                        k_true += 1;
                                    } else {
                                        k_false += 1;
                                    }
                                } else {
                                    k_diff += 1;
                                }
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if k_true + k_false + k_diff < cfg.min_overlap {
                    continue;
                }
                let logit = prior_logit
                    + k_true as f64 * lr_true
                    + k_false as f64 * lr_false
                    + k_diff as f64 * lr_diff;
                let p = 1.0 / (1.0 + (-logit).exp());
                m[a][b] = p;
                m[b][a] = p;
            }
        }
        m
    }
}

impl Corroborator for AccuVote {
    fn name(&self) -> &str {
        "AccuVote"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        self.config.validate()?;
        let cfg = &self.config;
        let n_facts = dataset.n_facts();
        let mut trust = vec![cfg.initial_trust; dataset.n_sources()];
        // Uniform prior probabilities: the first dependence pass sees no
        // confident fact, so iteration 1 scores dependence-free.
        let mut probs = vec![0.5; n_facts];
        let mut rounds = 0;

        for _ in 0..cfg.iteration.max_iterations {
            rounds += 1;
            let dependence = self.dependence_matrix(dataset, &probs);

            // Fact scoring with dependence-discounted vote weights.
            for f in dataset.facts() {
                let votes = dataset.votes().votes_on(f);
                if votes.is_empty() {
                    probs[f.index()] = cfg.voteless_prior;
                    continue;
                }
                // Count voters in decreasing-trust order; damp each by the
                // probability it is an original (not a copy of an
                // already-counted voter).
                let mut order: Vec<usize> = (0..votes.len()).collect();
                order.sort_by(|&x, &y| {
                    trust[votes[y].source.index()]
                        .total_cmp(&trust[votes[x].source.index()])
                        .then(votes[x].source.cmp(&votes[y].source))
                });
                let mut num = 0.0;
                let mut den = 0.0;
                let mut counted: Vec<usize> = Vec::with_capacity(votes.len());
                for &vi in &order {
                    let s = votes[vi].source.index();
                    let mut weight = 1.0;
                    for &prev in &counted {
                        weight *= 1.0 - cfg.copy_rate * dependence[s][prev];
                    }
                    counted.push(s);
                    let p_correct = match votes[vi].vote {
                        Vote::True => trust[s],
                        Vote::False => 1.0 - trust[s],
                    };
                    num += weight * p_correct;
                    den += weight;
                }
                probs[f.index()] = if den > 1e-12 { num / den } else { cfg.voteless_prior };
            }

            // Trust update: match fraction against rounded outcomes.
            let previous = trust.clone();
            for s in dataset.sources() {
                let votes = dataset.votes().votes_by(s);
                if votes.is_empty() {
                    continue;
                }
                let correct = votes
                    .iter()
                    .filter(|fv| fv.vote.as_bool() == (probs[fv.fact.index()] >= 0.5))
                    .count();
                trust[s.index()] = correct as f64 / votes.len() as f64;
            }
            let residual =
                trust.iter().zip(&previous).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            if cfg.iteration.converged(residual) {
                break;
            }
        }

        CorroborationResult::new(probs, TrustSnapshot::from_values(trust)?, None, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Five independent good sources vs a bad source with two mirrors.
    ///
    /// - 12 *anchor* facts everyone affirms correctly;
    /// - 10 *exposed* facts: all five good sources deny, the whole clique
    ///   affirms — an independent majority reveals the clique's shared
    ///   error pattern;
    /// - 12 *contested* facts: only two good sources deny while the clique
    ///   affirms — majority voting is fooled 3-to-2 here, and only
    ///   discounting the mirrors can recover the truth.
    fn copier_world() -> (Dataset, Vec<FactId>) {
        let mut b = DatasetBuilder::new();
        let goods: Vec<SourceId> = (0..5).map(|i| b.add_source(format!("good{i}"))).collect();
        let bad = b.add_source("bad");
        let m1 = b.add_source("mirror1");
        let m2 = b.add_source("mirror2");
        let clique = [bad, m1, m2];

        for i in 0..12 {
            let f = b.add_fact_with_truth(format!("anchor{i}"), Label::True);
            for &s in goods.iter().chain(&clique) {
                b.cast(s, f, Vote::True).unwrap();
            }
        }
        for i in 0..10 {
            let f = b.add_fact_with_truth(format!("exposed{i}"), Label::False);
            for &s in &goods {
                b.cast(s, f, Vote::False).unwrap();
            }
            for &s in &clique {
                b.cast(s, f, Vote::True).unwrap();
            }
        }
        let mut contested = Vec::new();
        for i in 0..12 {
            let f = b.add_fact_with_truth(format!("contested{i}"), Label::False);
            // Rotate which pair of good sources covers the fact.
            b.cast(goods[i % 5], f, Vote::False).unwrap();
            b.cast(goods[(i + 2) % 5], f, Vote::False).unwrap();
            for &s in &clique {
                b.cast(s, f, Vote::True).unwrap();
            }
            contested.push(f);
        }
        (b.build().unwrap(), contested)
    }

    #[test]
    fn dependence_detection_flags_the_clique() {
        let (ds, _) = copier_world();
        let alg = AccuVote::default();
        // Judge with confident ground-truth-like probabilities to isolate
        // the detector.
        let probs: Vec<f64> = ds
            .ground_truth()
            .unwrap()
            .labels()
            .iter()
            .map(|l| if l.as_bool() { 0.9 } else { 0.1 })
            .collect();
        let m = alg.dependence_matrix(&ds, &probs);
        // bad (5) with its mirrors (6, 7): 22 shared false values → ≈1.
        assert!(m[5][6] > 0.95, "bad–mirror1 = {}", m[5][6]);
        assert!(m[5][7] > 0.95, "bad–mirror2 = {}", m[5][7]);
        // good pair (0, 1): only shared *true* values → below the prior's
        // posterior for the clique and below 0.5.
        assert!(m[0][1] < 0.5, "good pair = {}", m[0][1]);
        // Symmetric, empty diagonal.
        assert_eq!(m[6][5], m[5][6]);
        assert_eq!(m[5][5], 0.0);
    }

    #[test]
    fn first_iteration_is_dependence_free() {
        let (ds, _) = copier_world();
        let alg = AccuVote::default();
        // With the uniform 0.5 prior nothing is confident → empty matrix.
        let m = alg.dependence_matrix(&ds, &vec![0.5; ds.n_facts()]);
        assert!(m.iter().all(|row| row.iter().all(|&p| p == 0.0)));
    }

    #[test]
    fn copier_clique_does_not_outvote_independents() {
        use crate::baseline::Voting;
        let (ds, contested) = copier_world();
        let voting = Voting.corroborate(&ds).unwrap();
        let accu = AccuVote::default().corroborate(&ds).unwrap();
        for f in contested {
            assert!(
                voting.decisions().label(f).as_bool(),
                "voting must be fooled by the 3-vs-2 clique"
            );
            assert!(
                !accu.decisions().label(f).as_bool(),
                "AccuVote must discount the mirrors (p = {})",
                accu.probability(f)
            );
        }
        let m = accu.confusion(&ds).unwrap();
        assert_eq!(m.accuracy(), 1.0, "{m:?}");
    }

    #[test]
    fn clique_ends_with_low_trust() {
        let (ds, _) = copier_world();
        let accu = AccuVote::default().corroborate(&ds).unwrap();
        for s in [5usize, 6, 7] {
            assert!(
                accu.trust().trust(SourceId::new(s)) < 0.6,
                "s{s} = {}",
                accu.trust().trust(SourceId::new(s))
            );
        }
        for s in 0..5 {
            assert!(accu.trust().trust(SourceId::new(s)) > 0.9, "s{s}");
        }
    }

    #[test]
    fn small_overlaps_are_not_scored() {
        let mut b = DatasetBuilder::new();
        let a = b.add_source("a");
        let c = b.add_source("c");
        let f = b.add_fact("only");
        b.cast(a, f, Vote::True).unwrap();
        b.cast(c, f, Vote::True).unwrap();
        let ds = b.build().unwrap();
        let alg = AccuVote::default();
        let m = alg.dependence_matrix(&ds, &[0.9]);
        assert_eq!(m[0][1], 0.0, "below min_overlap → unscored");
    }

    #[test]
    fn invalid_configs_rejected() {
        let (ds, _) = copier_world();
        for cfg in [
            AccuVoteConfig { error_rate: 0.0, ..Default::default() },
            AccuVoteConfig { copy_rate: 1.5, ..Default::default() },
            AccuVoteConfig { dependence_prior: 0.0, ..Default::default() },
            AccuVoteConfig { confidence_margin: 0.6, ..Default::default() },
        ] {
            assert!(AccuVote::new(cfg).corroborate(&ds).is_err(), "{cfg:?}");
        }
    }
}
