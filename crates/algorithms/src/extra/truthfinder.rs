//! TruthFinder (Yin, Han & Yu, KDD 2007 / TKDE 2008) — the pioneering
//! truth-discovery algorithm from the paper's related work (§7), included
//! as an additional single-trust-score baseline for the ablation benches.
//!
//! Sources carry a trustworthiness `t(s)`; the *trust score* of a source is
//! `τ(s) = −ln(1 − t(s))`, and the confidence of a fact is a logistic
//! squashing of the summed trust scores of its supporters (minus its
//! deniers):
//!
//! ```text
//! σ*(f) = Σ_{s: T vote} τ(s) − Σ_{s: F vote} τ(s)
//! σ(f)  = 1 / (1 + e^{−γ·σ*(f)})
//! t(s)  = mean over s's votes of (vote == T ? σ(f) : 1 − σ(f))
//! ```
//!
//! `γ` is the damping factor (0.3 in the original paper).

use corroborate_core::prelude::*;

use crate::convergence::IterationControl;

/// Configuration for [`TruthFinder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthFinderConfig {
    /// Initial trustworthiness of every source (0.9 in the original paper).
    pub initial_trust: f64,
    /// Damping factor γ of the logistic squashing.
    pub gamma: f64,
    /// Probability reported for voteless facts.
    pub voteless_prior: f64,
    /// Iteration cap and convergence tolerance.
    pub iteration: IterationControl,
}

impl Default for TruthFinderConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            gamma: 0.3,
            voteless_prior: 0.5,
            iteration: IterationControl::default(),
        }
    }
}

/// TruthFinder corroborator. See the module-level documentation.
#[derive(Debug, Clone, Default)]
pub struct TruthFinder {
    config: TruthFinderConfig,
}

impl TruthFinder {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: TruthFinderConfig) -> Self {
        Self { config }
    }
}

/// Caps trust away from 1.0 so `−ln(1 − t)` stays finite.
const TRUST_CAP: f64 = 1.0 - 1e-9;

impl Corroborator for TruthFinder {
    fn name(&self) -> &str {
        "TruthFinder"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        let cfg = &self.config;
        corroborate_core::error::check_probability("initial trust", cfg.initial_trust)?;
        corroborate_core::error::check_probability("voteless prior", cfg.voteless_prior)?;
        if !(cfg.gamma > 0.0 && cfg.gamma.is_finite()) {
            return Err(CoreError::InvalidConfig {
                message: format!("gamma must be positive, got {}", cfg.gamma),
            });
        }
        cfg.iteration.validate()?;

        let mut trust = vec![cfg.initial_trust; dataset.n_sources()];
        let mut probs = vec![cfg.voteless_prior; dataset.n_facts()];
        let mut rounds = 0;

        for _ in 0..cfg.iteration.max_iterations {
            rounds += 1;
            for f in dataset.facts() {
                let votes = dataset.votes().votes_on(f);
                if votes.is_empty() {
                    continue;
                }
                let score: f64 = votes
                    .iter()
                    .map(|sv| {
                        let tau = -(1.0 - trust[sv.source.index()].min(TRUST_CAP)).ln();
                        if sv.vote.is_affirmative() {
                            tau
                        } else {
                            -tau
                        }
                    })
                    .sum();
                probs[f.index()] = 1.0 / (1.0 + (-cfg.gamma * score).exp());
            }
            let previous = trust.clone();
            for s in dataset.sources() {
                let votes = dataset.votes().votes_by(s);
                if votes.is_empty() {
                    continue;
                }
                let sum: f64 = votes
                    .iter()
                    .map(|fv| match fv.vote {
                        Vote::True => probs[fv.fact.index()],
                        Vote::False => 1.0 - probs[fv.fact.index()],
                    })
                    .sum();
                trust[s.index()] = sum / votes.len() as f64;
            }
            let residual =
                trust.iter().zip(&previous).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            if cfg.iteration.converged(residual) {
                break;
            }
        }

        CorroborationResult::new(probs, TrustSnapshot::from_values(trust)?, None, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn supported_facts_get_high_confidence() {
        let ds = motivating_example();
        let r = TruthFinder::default().corroborate(&ds).unwrap();
        // T-only facts with two+ supporters must be confidently true.
        assert!(r.probability(FactId::new(1)) > 0.6); // r2: 4 supporters
                                                      // r12 (2 F vs 1 T) must score lowest.
        let min = r.probabilities().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((r.probability(FactId::new(11)) - min).abs() < 1e-9);
    }

    #[test]
    fn affirmative_only_regime_also_defeats_truthfinder() {
        // Like the other single-trust-score methods, TruthFinder believes
        // everything in the T-only regime — that's why it's a baseline.
        let ds = motivating_example();
        let r = TruthFinder::default().corroborate(&ds).unwrap();
        for f in ds.facts() {
            if ds.votes().is_affirmative_only(f) {
                assert!(r.decisions().label(f).as_bool(), "{}", ds.fact_name(f));
            }
        }
    }

    #[test]
    fn gamma_must_be_positive() {
        let cfg = TruthFinderConfig { gamma: 0.0, ..Default::default() };
        assert!(TruthFinder::new(cfg).corroborate(&motivating_example()).is_err());
    }

    #[test]
    fn trust_never_explodes_despite_log_transform() {
        let ds = motivating_example();
        let r = TruthFinder::default().corroborate(&ds).unwrap();
        for s in ds.sources() {
            let t = r.trust().trust(s);
            assert!((0.0..=1.0).contains(&t));
        }
    }
}
