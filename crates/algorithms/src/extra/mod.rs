//! Additional truth-discovery baselines from the paper's related work
//! (§7), used by the ablation benchmarks: [`TruthFinder`] (Yin et al.),
//! the Pasternack & Roth family ([`Pasternack`]: `Sums`, `AvgLog`,
//! `Invest`, `PooledInvest`), and the dependence-aware [`AccuVote`]
//! (Dong et al.).

mod accu;
mod pasternack;
mod truthfinder;

pub use accu::{AccuVote, AccuVoteConfig};
pub use pasternack::{Pasternack, PasternackConfig, PasternackVariant};
pub use truthfinder::{TruthFinder, TruthFinderConfig};
