//! The Pasternack & Roth (COLING 2010) fan of algorithms — **AvgLog**,
//! **Invest** and **PooledInvest** — cited in the paper's related work
//! (§7) and implemented here as additional single-trust-score baselines
//! for the ablation benches.
//!
//! The framework views each vote as a *claim*: a `T` vote claims "`f` is
//! true", an `F` vote claims "`f` is false"; the two claims about a fact
//! form a mutual-exclusion set. Sources earn trust from the belief their
//! claims accumulate; beliefs are recomputed from trust. The three
//! variants differ in the belief/trust coupling:
//!
//! - **AvgLog** — `T(s) = log(|C_s|) · avg B(c)`: rewards prolific sources
//!   logarithmically instead of linearly.
//! - **Invest** — each source spreads its trust evenly over its claims;
//!   a claim's belief is `G(Σ investments)` with `G(x) = x^g`, and sources
//!   are repaid proportionally to their share of the investment.
//! - **PooledInvest** — Invest, but beliefs are linearly rescaled within
//!   each mutual-exclusion set so a set's total belief equals its total
//!   investment (stops `x^g` from exploding).
//!
//! The reported probability of a fact is `B(true claim) / (B(true) +
//! B(false))`, with the configured prior for voteless facts.

use corroborate_core::prelude::*;

use crate::convergence::IterationControl;

/// Which Pasternack & Roth variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PasternackVariant {
    /// `Sums` — Kleinberg's hubs-and-authorities coupling (the simplest
    /// baseline in the Pasternack & Roth framework): belief = sum of the
    /// claimants' trust, trust = sum of the claims' belief.
    Sums,
    /// The `AvgLog` coupling.
    AvgLog,
    /// The `Invest` coupling.
    Invest,
    /// The `PooledInvest` coupling.
    PooledInvest,
}

impl PasternackVariant {
    fn name(self) -> &'static str {
        match self {
            PasternackVariant::Sums => "Sums",
            PasternackVariant::AvgLog => "AvgLog",
            PasternackVariant::Invest => "Invest",
            PasternackVariant::PooledInvest => "PooledInvest",
        }
    }
}

/// Configuration for [`Pasternack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PasternackConfig {
    /// Initial trust for every source.
    pub initial_trust: f64,
    /// Growth exponent `g` of `G(x) = x^g` (1.2 in the original paper);
    /// ignored by `AvgLog`.
    pub growth: f64,
    /// Probability reported for voteless facts.
    pub voteless_prior: f64,
    /// Iteration cap and convergence tolerance.
    pub iteration: IterationControl,
}

impl Default for PasternackConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            growth: 1.2,
            voteless_prior: 0.5,
            iteration: IterationControl { max_iterations: 20, tolerance: 1e-6 },
        }
    }
}

/// A Pasternack & Roth corroborator. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Pasternack {
    variant: PasternackVariant,
    config: PasternackConfig,
}

impl Pasternack {
    /// Creates the chosen variant with the default configuration.
    pub fn new(variant: PasternackVariant) -> Self {
        Self { variant, config: PasternackConfig::default() }
    }

    /// Creates the chosen variant with an explicit configuration.
    pub fn with_config(variant: PasternackVariant, config: PasternackConfig) -> Self {
        Self { variant, config }
    }

    /// The variant being run.
    pub fn variant(&self) -> PasternackVariant {
        self.variant
    }
}

impl Corroborator for Pasternack {
    fn name(&self) -> &str {
        self.variant.name()
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        let cfg = &self.config;
        corroborate_core::error::check_probability("initial trust", cfg.initial_trust)?;
        corroborate_core::error::check_probability("voteless prior", cfg.voteless_prior)?;
        if !(cfg.growth >= 1.0 && cfg.growth.is_finite()) {
            return Err(CoreError::InvalidConfig {
                message: format!("growth exponent must be ≥ 1, got {}", cfg.growth),
            });
        }
        cfg.iteration.validate()?;

        let n_facts = dataset.n_facts();
        let mut trust = vec![cfg.initial_trust; dataset.n_sources()];
        // Belief in the claim "f is true" / "f is false": indexed [fact][polarity]
        // with polarity 1 = true.
        let mut belief = vec![[0.0f64; 2]; n_facts];
        let mut rounds = 0;

        for _ in 0..cfg.iteration.max_iterations {
            rounds += 1;
            // --- Belief step ------------------------------------------------
            let mut investment = vec![[0.0f64; 2]; n_facts];
            for s in dataset.sources() {
                let votes = dataset.votes().votes_by(s);
                if votes.is_empty() {
                    continue;
                }
                let share = trust[s.index()] / votes.len() as f64;
                for fv in votes {
                    let pol = usize::from(fv.vote.is_affirmative());
                    investment[fv.fact.index()][pol] += match self.variant {
                        // Sums/AvgLog beliefs are plain trust sums.
                        PasternackVariant::Sums | PasternackVariant::AvgLog => trust[s.index()],
                        _ => share,
                    };
                }
            }
            for f in 0..n_facts {
                for pol in 0..2 {
                    belief[f][pol] = match self.variant {
                        PasternackVariant::Sums | PasternackVariant::AvgLog => investment[f][pol],
                        PasternackVariant::Invest | PasternackVariant::PooledInvest => {
                            investment[f][pol].powf(cfg.growth)
                        }
                    };
                }
                if self.variant == PasternackVariant::PooledInvest {
                    let g_total = belief[f][0] + belief[f][1];
                    let i_total = investment[f][0] + investment[f][1];
                    if g_total > 1e-300 {
                        for b in belief[f].iter_mut() {
                            *b = *b / g_total * i_total;
                        }
                    }
                }
            }
            // --- Trust step -------------------------------------------------
            let previous = trust.clone();
            for s in dataset.sources() {
                let votes = dataset.votes().votes_by(s);
                if votes.is_empty() {
                    continue;
                }
                let mut acc = 0.0;
                for fv in votes {
                    let fi = fv.fact.index();
                    let pol = usize::from(fv.vote.is_affirmative());
                    acc += match self.variant {
                        // Sums: plain belief sum (hubs-and-authorities).
                        PasternackVariant::Sums => belief[fi][pol],
                        PasternackVariant::AvgLog => {
                            // Average belief, scaled by log(1 + |C_s|).
                            belief[fi][pol] / votes.len() as f64
                        }
                        PasternackVariant::Invest | PasternackVariant::PooledInvest => {
                            // Repayment proportional to investment share.
                            let inv = investment[fi][pol];
                            if inv > 1e-300 {
                                belief[fi][pol] * (previous[s.index()] / votes.len() as f64) / inv
                            } else {
                                0.0
                            }
                        }
                    };
                }
                trust[s.index()] = match self.variant {
                    PasternackVariant::AvgLog => acc * (1.0 + votes.len() as f64).ln(),
                    _ => acc,
                };
            }
            // Rescale trust onto [0, 1] so the fixed point is well-defined
            // (the original normalises by the maximum each iteration).
            let max = trust.iter().cloned().fold(0.0f64, f64::max);
            if max > 1e-300 {
                for t in &mut trust {
                    *t /= max;
                }
            }
            let residual =
                trust.iter().zip(&previous).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            if cfg.iteration.converged(residual) {
                break;
            }
        }

        let probs: Vec<f64> = (0..n_facts)
            .map(|f| {
                let total = belief[f][0] + belief[f][1];
                if total > 1e-300 {
                    belief[f][1] / total
                } else {
                    cfg.voteless_prior
                }
            })
            .collect();
        CorroborationResult::new(probs, TrustSnapshot::from_values(trust)?, None, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    const ALL: [PasternackVariant; 4] = [
        PasternackVariant::Sums,
        PasternackVariant::AvgLog,
        PasternackVariant::Invest,
        PasternackVariant::PooledInvest,
    ];

    #[test]
    fn names_match_variants() {
        for v in ALL {
            assert_eq!(Pasternack::new(v).name(), v.name());
        }
    }

    #[test]
    fn unanimously_supported_facts_are_true_under_all_variants() {
        let ds = motivating_example();
        for v in ALL {
            let r = Pasternack::new(v).corroborate(&ds).unwrap();
            for f in ds.facts() {
                if ds.votes().is_affirmative_only(f) {
                    assert!(r.decisions().label(f).as_bool(), "{:?}: {}", v, ds.fact_name(f));
                }
            }
        }
    }

    #[test]
    fn majority_denial_defeats_single_supporter() {
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..4).map(|i| b.add_source(format!("s{i}"))).collect();
        let f = b.add_fact("contested");
        b.cast(sources[0], f, Vote::True).unwrap();
        for &s in &sources[1..] {
            b.cast(s, f, Vote::False).unwrap();
        }
        // Anchor facts so trust is meaningful.
        for i in 0..5 {
            let g = b.add_fact(format!("anchor{i}"));
            for &s in &sources {
                b.cast(s, g, Vote::True).unwrap();
            }
        }
        let ds = b.build().unwrap();
        for v in ALL {
            let r = Pasternack::new(v).corroborate(&ds).unwrap();
            assert!(!r.decisions().label(f).as_bool(), "{v:?}");
        }
    }

    #[test]
    fn probabilities_and_trust_stay_in_unit_interval() {
        let ds = motivating_example();
        for v in ALL {
            let r = Pasternack::new(v).corroborate(&ds).unwrap();
            for &p in r.probabilities() {
                assert!((0.0..=1.0).contains(&p), "{v:?}: p = {p}");
            }
            for s in ds.sources() {
                assert!((0.0..=1.0).contains(&r.trust().trust(s)), "{v:?}");
            }
        }
    }

    #[test]
    fn growth_exponent_validation() {
        let cfg = PasternackConfig { growth: 0.5, ..Default::default() };
        assert!(Pasternack::with_config(PasternackVariant::Invest, cfg)
            .corroborate(&motivating_example())
            .is_err());
    }

    #[test]
    fn voteless_fact_takes_prior() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("silent");
        let ds = b.build().unwrap();
        for v in ALL {
            let r = Pasternack::new(v).corroborate(&ds).unwrap();
            assert!((r.probabilities()[0] - 0.5).abs() < 1e-12, "{v:?}");
        }
    }
}
