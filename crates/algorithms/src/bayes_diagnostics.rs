//! Convergence diagnostics for the `BayesEstimate` Gibbs sampler: the
//! Gelman–Rubin potential-scale-reduction factor (R̂) computed across
//! independent chains.
//!
//! The paper notes BayesEstimate "requires a burning period before
//! stabilizing" (§6.2.5); this module makes that observable. Each chain is
//! a full `BayesEstimate` run with a different seed; the monitored scalar
//! per chain is the posterior truth probability of each fact. R̂ close to
//! 1 for (nearly) all facts means the chains agree and the burn-in was
//! sufficient; facts with large R̂ are the ones whose truth the posterior
//! genuinely cannot pin down.

use corroborate_core::prelude::*;

use crate::bayes::{BayesEstimate, BayesEstimateConfig};

/// Summary of a multi-chain diagnostic run.
#[derive(Debug, Clone)]
pub struct GibbsDiagnostics {
    /// Per-fact between/within-chain variance ratio proxy: the ratio of
    /// the spread of per-chain posterior means to the expected Monte-Carlo
    /// spread. Values ≈ 1 indicate agreement.
    pub r_hat: Vec<f64>,
    /// Per-fact posterior mean across all chains.
    pub pooled_probability: Vec<f64>,
    /// Number of chains run.
    pub n_chains: usize,
    /// Samples per chain.
    pub samples_per_chain: usize,
}

impl GibbsDiagnostics {
    /// Largest R̂ across facts (the headline convergence number).
    pub fn max_r_hat(&self) -> f64 {
        self.r_hat.iter().cloned().fold(1.0, f64::max)
    }

    /// Facts whose R̂ exceeds `threshold` (1.1 is the conventional cut).
    pub fn unconverged_facts(&self, threshold: f64) -> Vec<FactId> {
        self.r_hat
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r > threshold)
            .map(|(i, _)| FactId::new(i))
            .collect()
    }
}

/// Runs `n_chains` independent `BayesEstimate` chains (seeds
/// `base.seed`, `base.seed + 1`, …) and computes per-fact R̂.
///
/// Because each chain reports only its posterior *mean* per fact, the
/// within-chain variance is approximated by the binomial Monte-Carlo
/// variance `p̄(1 − p̄)/samples` — exact for independent draws, an
/// underestimate for autocorrelated chains, so the resulting R̂ is a
/// *conservative* (pessimistic) convergence check.
///
/// # Errors
/// [`CoreError::InvalidConfig`] for fewer than 2 chains; propagates
/// sampler errors.
pub fn diagnose_chains(
    dataset: &Dataset,
    base: &BayesEstimateConfig,
    n_chains: usize,
) -> Result<GibbsDiagnostics, CoreError> {
    if n_chains < 2 {
        return Err(CoreError::InvalidConfig { message: "R-hat needs at least two chains".into() });
    }
    let mut chain_means: Vec<Vec<f64>> = Vec::with_capacity(n_chains);
    for chain in 0..n_chains {
        let config = BayesEstimateConfig { seed: base.seed.wrapping_add(chain as u64), ..*base };
        let result = BayesEstimate::new(config).corroborate(dataset)?;
        chain_means.push(result.probabilities().to_vec());
    }

    let n_facts = dataset.n_facts();
    let m = n_chains as f64;
    let samples = base.samples.max(1) as f64;
    let mut r_hat = Vec::with_capacity(n_facts);
    let mut pooled = Vec::with_capacity(n_facts);
    for f in 0..n_facts {
        let means: Vec<f64> = chain_means.iter().map(|c| c[f]).collect();
        let grand = means.iter().sum::<f64>() / m;
        pooled.push(grand);
        // Between-chain variance of the means.
        let between = means.iter().map(|x| (x - grand) * (x - grand)).sum::<f64>() / (m - 1.0);
        // Monte-Carlo (within-chain) variance of a posterior mean.
        let within = (grand * (1.0 - grand) / samples).max(1e-9);
        // PSRF-style ratio: sqrt((within + between) / within).
        r_hat.push(((within + between) / within).sqrt());
    }
    Ok(GibbsDiagnostics {
        r_hat,
        pooled_probability: pooled,
        n_chains,
        samples_per_chain: base.samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn well_determined_facts_converge() {
        let ds = motivating_example();
        let d = diagnose_chains(&ds, &BayesEstimateConfig::paper_priors(1), 4).unwrap();
        assert_eq!(d.r_hat.len(), ds.n_facts());
        assert_eq!(d.n_chains, 4);
        // Under the strong paper priors every fact is decisively true —
        // all chains agree, R̂ stays near 1.
        assert!(d.max_r_hat() < 2.0, "max R̂ = {}", d.max_r_hat());
        assert!(d.unconverged_facts(2.0).is_empty());
        // Pooled probabilities match the regime (everything believed).
        assert!(d.pooled_probability.iter().all(|&p| p > 0.5));
    }

    #[test]
    fn short_chains_on_ambiguous_data_disagree() {
        // A perfectly balanced conflict with weak priors and tiny chains:
        // the posterior is bimodal-ish, so independent chains scatter.
        let mut b = DatasetBuilder::new();
        let s0 = b.add_source("a");
        let s1 = b.add_source("b");
        for i in 0..6 {
            let f = b.add_fact(format!("f{i}"));
            b.cast(s0, f, Vote::True).unwrap();
            b.cast(s1, f, Vote::False).unwrap();
        }
        let ds = b.build().unwrap();
        let cfg = BayesEstimateConfig {
            alpha0: crate::bayes::BetaPrior { a: 2.0, b: 2.0 },
            alpha1: crate::bayes::BetaPrior { a: 2.0, b: 2.0 },
            beta: crate::bayes::BetaPrior { a: 1.0, b: 1.0 },
            burn_in: 2,
            samples: 5,
            seed: 1,
        };
        let d = diagnose_chains(&ds, &cfg, 6).unwrap();
        // With 5 samples per chain the Monte-Carlo error is large and the
        // chains visibly disagree somewhere.
        assert!(d.max_r_hat() > 1.0);
        assert_eq!(d.samples_per_chain, 5);
    }

    #[test]
    fn requires_two_chains() {
        let ds = motivating_example();
        assert!(diagnose_chains(&ds, &BayesEstimateConfig::paper_priors(1), 1).is_err());
    }
}
