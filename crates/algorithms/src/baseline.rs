//! Non-corroborating baselines (§6.1.1): `Voting` and `Counting`.
//!
//! - [`Voting`] declares a fact true when it has strictly more `T` votes
//!   than `F` votes.
//! - [`Counting`] declares a fact true when strictly more than half of
//!   *all* sources cast a `T` vote for it — a much stricter rule that
//!   trades recall for precision (the paper's Table 4: P=0.94, R=0.65).
//!
//! Neither method models source quality; both serve as the floor the
//! corroboration techniques are measured against.

use corroborate_core::prelude::*;

/// Nudge applied so that the library-wide `p ≥ 0.5 → true` decision rule
/// (paper Equation 2) realises the *strict* majorities these baselines are
/// defined with: an exact tie must decide `false`.
const TIE_EPS: f64 = 1e-9;

/// Majority fraction `t / total` with exact ties pushed just below 0.5 so
/// the ≥0.5 threshold treats them as `false`.
fn strict_majority_probability(t: usize, total: usize) -> f64 {
    if total == 0 {
        // No evidence at all: a listing nobody reports is not believed.
        return 0.5 - TIE_EPS;
    }
    if 2 * t == total {
        0.5 - TIE_EPS
    } else {
        t as f64 / total as f64
    }
}

/// The `Voting` baseline: true iff more `T` than `F` votes.
///
/// The reported probability is the fraction of `T` votes among the votes
/// cast (ties nudged below 0.5). The reported trust score of each source is
/// its agreement rate with the voting outcome — voting itself uses no trust.
#[derive(Debug, Clone, Copy, Default)]
pub struct Voting;

/// The `Counting` baseline: true iff more than half of all sources vote `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counting;

fn agreement_trust(dataset: &Dataset, decisions: &TruthAssignment) -> TrustSnapshot {
    let mut trust = Vec::with_capacity(dataset.n_sources());
    for s in dataset.sources() {
        let votes = dataset.votes().votes_by(s);
        if votes.is_empty() {
            trust.push(0.5);
            continue;
        }
        let agree = votes
            .iter()
            .filter(|fv| fv.vote.as_bool() == decisions.label(fv.fact).as_bool())
            .count();
        trust.push(agree as f64 / votes.len() as f64);
    }
    TrustSnapshot::from_values(trust).expect("agreement rates are probabilities")
}

impl Corroborator for Voting {
    fn name(&self) -> &str {
        "Voting"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        let probs: Vec<f64> = dataset
            .facts()
            .map(|f| {
                let (t, fv) = dataset.votes().tally(f);
                strict_majority_probability(t, t + fv)
            })
            .collect();
        let decisions = TruthAssignment::from_probabilities(&probs);
        let trust = agreement_trust(dataset, &decisions);
        CorroborationResult::new(probs, trust, None, 1)
    }
}

impl Corroborator for Counting {
    fn name(&self) -> &str {
        "Counting"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        let n_sources = dataset.n_sources();
        let probs: Vec<f64> = dataset
            .facts()
            .map(|f| {
                let (t, _) = dataset.votes().tally(f);
                strict_majority_probability(t, n_sources)
            })
            .collect();
        let decisions = TruthAssignment::from_probabilities(&probs);
        let trust = agreement_trust(dataset, &decisions);
        CorroborationResult::new(probs, trust, None, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 sources; f0: 2T vs 1F; f1: 1T vs 1F (tie); f2: 3T; f3: 1T.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s: Vec<SourceId> = (0..4).map(|i| b.add_source(format!("s{i}"))).collect();
        let f0 = b.add_fact_with_truth("f0", Label::True);
        let f1 = b.add_fact_with_truth("f1", Label::False);
        let f2 = b.add_fact_with_truth("f2", Label::True);
        let f3 = b.add_fact_with_truth("f3", Label::False);
        b.cast(s[0], f0, Vote::True).unwrap();
        b.cast(s[1], f0, Vote::True).unwrap();
        b.cast(s[2], f0, Vote::False).unwrap();
        b.cast(s[0], f1, Vote::True).unwrap();
        b.cast(s[1], f1, Vote::False).unwrap();
        b.cast(s[0], f2, Vote::True).unwrap();
        b.cast(s[1], f2, Vote::True).unwrap();
        b.cast(s[3], f2, Vote::True).unwrap();
        b.cast(s[3], f3, Vote::True).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn voting_uses_strict_majority_of_cast_votes() {
        let ds = dataset();
        let r = Voting.corroborate(&ds).unwrap();
        let d = r.decisions();
        assert!(d.label(FactId::new(0)).as_bool()); // 2T vs 1F
        assert!(!d.label(FactId::new(1)).as_bool()); // tie → false
        assert!(d.label(FactId::new(2)).as_bool()); // 3T
        assert!(d.label(FactId::new(3)).as_bool()); // 1T vs 0F
    }

    #[test]
    fn counting_requires_majority_of_all_sources() {
        let ds = dataset();
        let r = Counting.corroborate(&ds).unwrap();
        let d = r.decisions();
        // 4 sources → need at least 3 T votes.
        assert!(!d.label(FactId::new(0)).as_bool()); // 2T of 4 = exactly half → false
        assert!(!d.label(FactId::new(1)).as_bool());
        assert!(d.label(FactId::new(2)).as_bool()); // 3T of 4
        assert!(!d.label(FactId::new(3)).as_bool()); // 1T of 4
    }

    #[test]
    fn counting_is_no_less_precise_than_voting_here() {
        let ds = dataset();
        let v = Voting.corroborate(&ds).unwrap().confusion(&ds).unwrap();
        let c = Counting.corroborate(&ds).unwrap().confusion(&ds).unwrap();
        assert!(c.precision() >= v.precision());
        assert!(c.recall() <= v.recall());
    }

    #[test]
    fn voteless_fact_is_false_under_both() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact_with_truth("silent", Label::False);
        let ds = b.build().unwrap();
        for alg in [&Voting as &dyn Corroborator, &Counting] {
            let r = alg.corroborate(&ds).unwrap();
            assert!(!r.decisions().label(FactId::new(0)).as_bool(), "{}", alg.name());
        }
    }

    #[test]
    fn trust_is_agreement_rate_with_outcome() {
        let ds = dataset();
        let r = Voting.corroborate(&ds).unwrap();
        // s0 voted T on f0 (out: true), T on f1 (out: false), T on f2 (true)
        // → agrees 2/3.
        let t = r.trust().trust(SourceId::new(0));
        assert!((t - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(Voting.name(), "Voting");
        assert_eq!(Counting.name(), "Counting");
    }
}
