//! # corroborate-algorithms
//!
//! Every truth-discovery algorithm of the `corroborate` workspace — the
//! reproduction of *“Corroborating Facts from Affirmative Statements”*
//! (Wu & Marian, EDBT 2014).
//!
//! ## The paper's contribution
//!
//! - [`inc`] — **IncEstimate** (Algorithm 1) with the entropy-driven
//!   [`inc::IncEstHeu`] strategy (Algorithm 2), the greedy
//!   [`inc::IncEstPS`] foil, and scripted schedules
//!   ([`inc::FixedSchedule`]) reproducing the §2.3 walkthrough.
//!
//! ## Baselines the paper evaluates against (§6.1.1)
//!
//! - [`baseline`] — `Voting` and `Counting`;
//! - [`galland`] — `2-Estimates`, `3-Estimates` and `Cosine`
//!   (Galland et al., WSDM 2010);
//! - [`bayes`] — `BayesEstimate`, the Latent Truth Model (Zhao et al.,
//!   PVLDB 2012) with the paper's exact priors.
//!
//! ## Extras for ablations (related work, §7)
//!
//! - [`extra`] — `TruthFinder`, `AvgLog`, `Invest`, `PooledInvest`.
//!
//! ## Multi-answer adaptation (§6.2.6)
//!
//! - [`multi_answer`] — runs any of the above over Hubdub-style
//!   question/candidate datasets with implicit-negative expansion and
//!   argmax decisions.
//!
//! Every algorithm implements
//! [`Corroborator`] and is
//! deterministic given its configuration (randomised algorithms take an
//! explicit seed).
//!
//! ```
//! use corroborate_core::prelude::*;
//! use corroborate_algorithms::inc::{IncEstimate, IncEstHeu};
//! use corroborate_algorithms::galland::TwoEstimates;
//!
//! let mut b = DatasetBuilder::new();
//! let s1 = b.add_source("blogA");
//! let s2 = b.add_source("blogB");
//! let f = b.add_fact("product launches in May");
//! b.cast(s1, f, Vote::True).unwrap();
//! b.cast(s2, f, Vote::True).unwrap();
//! let ds = b.build().unwrap();
//!
//! let inc = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
//! let two = TwoEstimates::default().corroborate(&ds).unwrap();
//! assert!(inc.probability(f) >= 0.5 && two.probability(f) >= 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod baseline;
pub mod bayes;
pub mod bayes_diagnostics;
pub mod convergence;
pub mod extra;
pub mod galland;
pub mod inc;
pub mod multi_answer;

pub use corroborate_core::corroborator::{CorroborationResult, Corroborator};
/// Re-export of the telemetry layer: attach a
/// [`RecordingObserver`](obs::RecordingObserver) via the `*_observed`
/// entry points ([`inc::IncEstimate::corroborate_observed`],
/// [`inc::IncEstimateSession::with_observer`], and the galland
/// `corroborate_observed` methods) to capture counters, span latencies, and
/// per-round / per-iteration records. See `docs/OBSERVABILITY.md`.
pub use corroborate_obs as obs;

/// True when the `obs` feature compiled the telemetry emission sites in.
/// Every site is guarded by `O::ENABLED && OBS_EMIT`, so with the feature
/// off the hooks constant-fold away even for enabled observers — the
/// `tracing` max-level pattern.
pub(crate) const OBS_EMIT: bool = cfg!(feature = "obs");

/// Times `f` under `span` when both the observer and the `obs` feature are
/// enabled; otherwise calls it directly with zero overhead. Also emits
/// hierarchical begin/end trace events carrying `payload` (round index,
/// fact count, shard count, …) so trace-enabled observers capture the
/// parent/child decomposition of the work.
#[inline]
pub(crate) fn traced<O: obs::Observer, R>(
    observer: &O,
    span: obs::Span,
    payload: u64,
    f: impl FnOnce() -> R,
) -> R {
    if O::ENABLED && OBS_EMIT {
        observer.traced(span, payload, f)
    } else {
        f()
    }
}

/// The full roster of corroborators the benchmark harness compares, boxed
/// behind the common trait. The `seed` parameterises the randomised
/// `BayesEstimate` sampler.
pub fn standard_roster(seed: u64) -> Vec<Box<dyn Corroborator>> {
    vec![
        Box::new(baseline::Voting),
        Box::new(baseline::Counting),
        Box::new(bayes::BayesEstimate::new(bayes::BayesEstimateConfig::paper_priors(seed))),
        Box::new(galland::TwoEstimates::default()),
        Box::new(inc::IncEstimate::new(inc::IncEstPS)),
        Box::new(inc::IncEstimate::new(inc::IncEstHeu::default())),
    ]
}

/// Every corroborator in the workspace behind the common trait: the
/// [`standard_roster`] plus the remaining Galland estimators and the
/// related-work [`extra`] methods. This is the roster the conformance
/// testkit's differential oracle drives; engine names are unique.
pub fn extended_roster(seed: u64) -> Vec<Box<dyn Corroborator>> {
    let mut roster = standard_roster(seed);
    roster.push(Box::new(galland::ThreeEstimates::default()));
    roster.push(Box::new(galland::Cosine::default()));
    roster.push(Box::new(extra::TruthFinder::default()));
    roster.push(Box::new(extra::AccuVote::default()));
    for variant in [
        extra::PasternackVariant::Sums,
        extra::PasternackVariant::AvgLog,
        extra::PasternackVariant::Invest,
        extra::PasternackVariant::PooledInvest,
    ] {
        roster.push(Box::new(extra::Pasternack::new(variant)));
    }
    roster
}
