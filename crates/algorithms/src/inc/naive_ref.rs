//! Naive pre-index reference for the IncEstHeu scoring path, compiled only
//! for tests.
//!
//! This replicates, decision for decision, the O(G²·|sig|²)-per-round
//! implementation the inverted-index engine replaced: clone the remaining
//! groups each round, recompute every group probability from the trust
//! snapshot, and scan *all* groups for the Equation 9 spillover with a
//! linear overlay lookup. The equivalence suite below drives both
//! implementations over randomized datasets and asserts identical
//! probabilities, scores, and selections — any divergence in the fast path
//! is a bug, not a tolerance question.

use corroborate_core::entropy::binary_entropy;
use corroborate_core::groups::FactGroup;
use corroborate_core::ids::{FactId, SourceId};
use corroborate_core::vote::{SourceVote, Vote};

use super::{DeltaHMode, IncState};

/// Trust overlay with the original linear `affected` lookup.
struct LinearOverlay<'a> {
    state: &'a IncState<'a>,
    affected: Vec<(SourceId, f64)>,
}

impl LinearOverlay<'_> {
    fn trust(&self, source: SourceId) -> f64 {
        self.affected
            .iter()
            .find(|(s, _)| *s == source)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| self.state.trust().trust(source))
    }

    fn probability(&self, signature: &[SourceVote], prior: f64) -> f64 {
        if signature.is_empty() {
            return prior;
        }
        let sum: f64 = signature
            .iter()
            .map(|sv| match sv.vote {
                Vote::True => self.trust(sv.source),
                Vote::False => 1.0 - self.trust(sv.source),
            })
            .sum();
        sum / signature.len() as f64
    }
}

/// The remaining groups, cloned — the per-round allocation the borrowed
/// view replaced.
pub(super) fn remaining_groups(state: &IncState<'_>) -> Vec<FactGroup> {
    state.remaining_groups().cloned().collect()
}

/// Every remaining group's probability, recomputed from the snapshot.
pub(super) fn probabilities(state: &IncState<'_>, groups: &[FactGroup]) -> Vec<f64> {
    groups.iter().map(|g| state.signature_probability(&g.signature)).collect()
}

/// Equation 9 spillover by full scan over the remaining group list.
pub(super) fn spillover(
    state: &IncState<'_>,
    groups: &[FactGroup],
    probs: &[f64],
    candidate_idx: usize,
) -> f64 {
    let candidate = &groups[candidate_idx];
    let p = probs[candidate_idx];
    let outcome = p >= 0.5;
    let size = candidate.facts.len() as u32;

    let affected: Vec<_> = candidate
        .signature
        .iter()
        .map(|sv| {
            let agrees = sv.vote.is_affirmative() == outcome;
            let extra_matches = if agrees { size } else { 0 };
            (sv.source, state.projected_trust(sv.source, extra_matches, size))
        })
        .collect();
    let overlay = LinearOverlay { state, affected };

    let prior = state.config().voteless_prior;
    let mut dh = 0.0;
    for (gi, other) in groups.iter().enumerate() {
        if gi == candidate_idx {
            continue;
        }
        let touched =
            other.signature.iter().any(|sv| overlay.affected.iter().any(|(s, _)| *s == sv.source));
        if !touched {
            continue;
        }
        let p_new = overlay.probability(&other.signature, prior);
        dh += other.facts.len() as f64 * (binary_entropy(p_new) - binary_entropy(probs[gi]));
    }
    dh
}

/// The pre-index `IncEstHeu::select`, tie-breaks and all.
pub(super) fn select(state: &IncState<'_>, mode: DeltaHMode) -> Vec<FactId> {
    let groups = remaining_groups(state);
    let probs = probabilities(state, &groups);

    let mut positive = Vec::new();
    let mut negative = Vec::new();
    for (i, &p) in probs.iter().enumerate() {
        if p > 0.5 {
            positive.push(i);
        } else if p < 0.5 {
            negative.push(i);
        }
    }
    if positive.is_empty() || negative.is_empty() {
        return Vec::new();
    }

    let score = |i: usize| -> f64 {
        match mode {
            DeltaHMode::SelfTerm => -binary_entropy(probs[i]),
            DeltaHMode::Equation9 => spillover(state, &groups, &probs, i),
            DeltaHMode::Full => {
                spillover(state, &groups, &probs, i)
                    - groups[i].facts.len() as f64 * binary_entropy(probs[i])
            }
        }
    };
    let best = |part: &[usize]| -> usize {
        let mut best_i = part[0];
        let mut best_score = f64::NEG_INFINITY;
        for &i in part {
            let s = score(i);
            let better = s > best_score
                || (s == best_score
                    && (groups[i].signature.len() > groups[best_i].signature.len()
                        || (groups[i].signature.len() == groups[best_i].signature.len()
                            && groups[i].facts.len() > groups[best_i].facts.len())));
            if better {
                best_score = s;
                best_i = i;
            }
        }
        best_i
    };
    let fg_pos = &groups[best(&positive)];
    let fg_neg = &groups[best(&negative)];

    let n = fg_pos.facts.len().min(fg_neg.facts.len());
    let mut selection = Vec::with_capacity(2 * n);
    selection.extend_from_slice(&fg_pos.facts[..n]);
    selection.extend_from_slice(&fg_neg.facts[..n]);
    selection
}

#[cfg(test)]
mod tests {
    use super::super::{
        heuristic, IncEstHeu, IncEstimate, IncEstimateConfig, SelectionStrategy, ShardConfig,
    };
    use super::*;
    use corroborate_core::prelude::*;
    use corroborate_datagen::motivating::motivating_example;
    use corroborate_obs::RecordingObserver;
    use proptest::prelude::*;

    const MODES: [DeltaHMode; 3] = [DeltaHMode::SelfTerm, DeltaHMode::Equation9, DeltaHMode::Full];

    /// Drives a full run round by round, asserting at every time point that
    /// the indexed/cached engine and this naive reference agree exactly.
    fn assert_equivalent_run(ds: &Dataset, mode: DeltaHMode) {
        let mut state = IncState::new(ds, IncEstimateConfig::default()).unwrap();
        let strategy = IncEstHeu::with_mode(mode);
        let mut rounds = 0usize;
        while state.remaining_count() > 0 {
            rounds += 1;
            assert!(rounds <= ds.n_facts() + 1, "{mode:?}: runaway round count");

            let naive_groups = remaining_groups(&state);
            let naive_probs = probabilities(&state, &naive_groups);

            // Cached per-group probabilities are bit-identical to scratch
            // recomputation (1e-12 is the contract; the cache meets it
            // exactly because it reuses the same kernel).
            let live: Vec<usize> = state
                .groups()
                .iter()
                .enumerate()
                .filter(|(_, g)| !g.facts.is_empty())
                .map(|(gi, _)| gi)
                .collect();
            assert_eq!(live.len(), naive_groups.len());
            for (&gi, &p) in live.iter().zip(&naive_probs) {
                assert!(
                    (state.group_probability(gi) - p).abs() <= 1e-12,
                    "{mode:?}: cache {} vs naive {p} for group {gi}",
                    state.group_probability(gi)
                );
                assert_eq!(state.group_probability(gi).to_bits(), p.to_bits());
            }

            // Spillover scores agree for every live candidate.
            for (k, &gi) in live.iter().enumerate() {
                let naive = spillover(&state, &naive_groups, &naive_probs, k);
                let fast = heuristic::spillover(&state, gi);
                assert!(
                    (naive - fast).abs() <= 1e-12,
                    "{mode:?}: spillover {naive} vs {fast} for group {gi}"
                );
            }

            // Identical selections, including tie-breaks.
            let naive_sel = select(&state, mode);
            let fast_sel = strategy.select(&state);
            assert_eq!(naive_sel, fast_sel, "{mode:?}: selections diverge");

            let round = if fast_sel.is_empty() { state.remaining_facts() } else { fast_sel };
            state.evaluate(&round);
        }
    }

    /// A recording observer must be computation-transparent: the observed
    /// run's probabilities, trust, decisions, and round count are
    /// bit-identical to the plain (noop-observer) run — selections included,
    /// since any divergent selection changes the trust trajectory.
    fn assert_observer_transparent(ds: &Dataset, mode: DeltaHMode) {
        let alg = IncEstimate::new(IncEstHeu::with_mode(mode));
        let plain = alg.corroborate(ds).unwrap();
        let rec = RecordingObserver::new();
        let observed = alg.corroborate_observed(ds, &rec).unwrap();
        assert_eq!(plain.rounds(), observed.rounds(), "{mode:?}: round counts diverge");
        for (a, b) in plain.probabilities().iter().zip(observed.probabilities()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}: probabilities diverge");
        }
        for (a, b) in plain.trust().values().iter().zip(observed.trust().values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}: trust diverges");
        }
        assert_eq!(plain.decisions().labels(), observed.decisions().labels(), "{mode:?}");
        if cfg!(feature = "obs") {
            assert_eq!(rec.rounds().len(), plain.rounds(), "{mode:?}: one record per round");
        } else {
            assert_eq!(rec.rounds().len(), 0, "{mode:?}: emission compiled out");
        }
    }

    /// Builds a dataset from a flat source×fact vote grid
    /// (0 = no vote, 1 = T, 2 = F).
    fn grid_dataset(n_sources: usize, n_facts: usize, cells: &[u8]) -> Dataset {
        let mut b = DatasetBuilder::new();
        let sources: Vec<SourceId> =
            (0..n_sources).map(|i| b.add_source(format!("s{i}"))).collect();
        let facts: Vec<FactId> = (0..n_facts).map(|i| b.add_fact(format!("f{i}"))).collect();
        for (k, &c) in cells.iter().enumerate() {
            let s = sources[k / n_facts];
            let f = facts[k % n_facts];
            match c {
                1 => b.cast(s, f, Vote::True).unwrap(),
                2 => b.cast(s, f, Vote::False).unwrap(),
                _ => {}
            }
        }
        b.build().unwrap()
    }

    fn dataset_strategy() -> impl Strategy<Value = Dataset> {
        (2usize..6, 3usize..24).prop_flat_map(|(n_sources, n_facts)| {
            proptest::collection::vec(0u8..3, n_sources * n_facts)
                .prop_map(move |cells| grid_dataset(n_sources, n_facts, &cells))
        })
    }

    /// Shard counts the invariance property sweeps: degenerate (1), even
    /// (2, 64 — more shards than most sampled datasets have groups, so the
    /// clamp path is exercised too), and prime (7, for uneven partitions).
    fn shard_count_strategy() -> impl Strategy<Value = usize> {
        (0usize..4).prop_map(|i| [1usize, 2, 7, 64][i])
    }

    /// Full runs must be bit-identical whatever the shard/thread
    /// configuration: the partition only re-orders independent per-shard
    /// work and the fixed-order merge reproduces the sequential argmax.
    fn assert_shard_invariant(ds: &Dataset, mode: DeltaHMode, shards: usize, threads: usize) {
        let sequential = IncEstimate::with_config(
            IncEstHeu::with_mode(mode),
            IncEstimateConfig { shard: ShardConfig::sequential(), ..Default::default() },
        )
        .corroborate(ds)
        .unwrap();
        let sharded = IncEstimate::with_config(
            IncEstHeu::with_mode(mode),
            IncEstimateConfig { shard: ShardConfig { shards, threads }, ..Default::default() },
        )
        .corroborate(ds)
        .unwrap();
        assert_eq!(sequential.rounds(), sharded.rounds(), "{mode:?}/{shards}: rounds diverge");
        for (a, b) in sequential.probabilities().iter().zip(sharded.probabilities()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}/{shards}: probabilities diverge");
        }
        for (a, b) in sequential.trust().values().iter().zip(sharded.trust().values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}/{shards}: trust diverges");
        }
        assert_eq!(
            sequential.decisions().labels(),
            sharded.decisions().labels(),
            "{mode:?}/{shards}: decisions diverge"
        );
    }

    #[test]
    fn motivating_example_scores_are_bit_identical() {
        let ds = motivating_example();
        for mode in MODES {
            assert_equivalent_run(&ds, mode);
        }
    }

    #[test]
    fn naive_select_matches_pinned_equation9_first_round() {
        // The Equation9 pinned outcome test hand-traces round 1 = {r5, r12};
        // the naive reference must reproduce the same first selection.
        let ds = motivating_example();
        let state = IncState::new(&ds, IncEstimateConfig::default()).unwrap();
        let sel = select(&state, DeltaHMode::Equation9);
        assert_eq!(sel, vec![FactId::new(4), FactId::new(11)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn equivalence_self_term(ds in dataset_strategy()) {
            assert_equivalent_run(&ds, DeltaHMode::SelfTerm);
        }

        #[test]
        fn equivalence_equation9(ds in dataset_strategy()) {
            assert_equivalent_run(&ds, DeltaHMode::Equation9);
        }

        #[test]
        fn equivalence_full(ds in dataset_strategy()) {
            assert_equivalent_run(&ds, DeltaHMode::Full);
        }

        #[test]
        fn observer_transparency(ds in dataset_strategy()) {
            for mode in MODES {
                assert_observer_transparent(&ds, mode);
            }
        }

        #[test]
        fn shard_count_invariance(
            ds in dataset_strategy(),
            shards in shard_count_strategy(),
            threads in 1usize..5,
        ) {
            for mode in MODES {
                assert_shard_invariant(&ds, mode, shards, threads);
            }
        }
    }
}
