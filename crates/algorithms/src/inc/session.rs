//! Interactive IncEstimate sessions: run the incremental corroboration
//! round by round, inspect the evolving trust between rounds, and
//! optionally *seed* facts whose labels are known out-of-band
//! (semi-supervised corroboration — e.g. the listings an analyst already
//! checked in person, exactly the paper's golden-set collection process
//! turned into an input instead of an evaluation artefact).

use corroborate_core::prelude::*;
use corroborate_obs::{Counter, NoopObserver, Observer, RoundRecord, Span, NOOP};

use super::{traced, IncEstimateConfig, IncState, SelectionStrategy, OBS_EMIT};

/// What one [`IncEstimateSession::step`] did.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// 1-based index of the completed time point.
    pub round: usize,
    /// Facts evaluated this round, with their fixed probabilities.
    pub evaluated: Vec<(FactId, f64)>,
    /// Trust snapshot `σ_{i+1}(S)` after folding the round in.
    pub trust: TrustSnapshot,
}

/// A stepping IncEstimate run. Create with [`IncEstimateSession::new`],
/// optionally [`seed`](Self::seed) known facts, then either call
/// [`step`](Self::step) until it returns `None` or let
/// [`finish`](Self::finish) drain the remaining rounds.
#[derive(Debug)]
pub struct IncEstimateSession<'a, S, O: Observer = NoopObserver> {
    state: IncState<'a, O>,
    strategy: S,
    trajectory: TrustTrajectory,
    rounds: usize,
}

impl<'a, S: SelectionStrategy> IncEstimateSession<'a, S> {
    /// Opens a session over `dataset` with the no-op observer.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn new(
        dataset: &'a Dataset,
        strategy: S,
        config: IncEstimateConfig,
    ) -> Result<Self, CoreError> {
        Self::with_observer(dataset, strategy, config, &NOOP)
    }
}

impl<'a, S: SelectionStrategy, O: Observer> IncEstimateSession<'a, S, O> {
    /// Opens a session over `dataset` with telemetry streaming into `obs`:
    /// per-round records, selection pruning-tier counters, cache telemetry,
    /// and span timings. Selections and probabilities are bit-identical
    /// whatever observer is attached.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn with_observer(
        dataset: &'a Dataset,
        strategy: S,
        config: IncEstimateConfig,
        obs: &'a O,
    ) -> Result<Self, CoreError> {
        let state = IncState::with_observer(dataset, config, obs)?;
        let mut trajectory = TrustTrajectory::new();
        trajectory.push(state.trust().clone());
        Ok(Self { state, strategy, trajectory, rounds: 0 })
    }

    /// Read access to the evolving state (trust, remaining facts, …).
    pub fn state(&self) -> &IncState<'a, O> {
        &self.state
    }

    /// Completed time points so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Marks `fact` as already evaluated with a known `label`
    /// (probability 1 or 0), folding it into the per-source counters and
    /// the trust snapshot — before or between rounds.
    ///
    /// # Errors
    /// - [`CoreError::IdOutOfRange`] for a fact outside the dataset;
    /// - [`CoreError::InvalidConfig`] when the fact was already evaluated.
    pub fn seed(&mut self, fact: FactId, label: Label) -> Result<(), CoreError> {
        if fact.index() >= self.state.dataset().n_facts() {
            return Err(CoreError::IdOutOfRange {
                kind: "fact",
                index: fact.index(),
                len: self.state.dataset().n_facts(),
            });
        }
        if !self.state.is_remaining(fact) {
            return Err(CoreError::InvalidConfig {
                message: format!("fact {fact} was already evaluated"),
            });
        }
        self.state.seed(fact, label);
        // Seeding replaces the latest snapshot rather than adding a time
        // point: it is knowledge injected *at* t_i, not a round.
        self.trajectory =
            replace_last(std::mem::take(&mut self.trajectory), self.state.trust().clone());
        Ok(())
    }

    /// Runs one time point. Returns `None` when every fact is evaluated.
    pub fn step(&mut self) -> Option<StepReport> {
        if self.state.remaining_count() == 0 {
            return None;
        }
        let obs = self.state.observer();
        let entropy_before =
            if O::ENABLED && OBS_EMIT { self.state.remaining_entropy() } else { 0.0 };
        let mut selection =
            traced(obs, Span::Select, self.rounds as u64, || self.strategy.select(&self.state));
        selection.retain(|&f| self.state.is_remaining(f));
        selection.sort_unstable();
        selection.dedup();
        if selection.is_empty() {
            selection = self.state.remaining_facts();
        }
        self.state.evaluate(&selection);
        self.rounds += 1;
        self.trajectory.push(self.state.trust().clone());
        if O::ENABLED && OBS_EMIT {
            obs.add(Counter::Rounds, 1);
            obs.round(&RoundRecord {
                round: self.rounds - 1,
                evaluated: selection.len(),
                remaining: self.state.remaining_count(),
                entropy_before,
                entropy_after: self.state.remaining_entropy(),
                // The observer pairs this with the strategy's pending
                // SelectionRecord, if one was emitted during select.
                selection: None,
            });
        }
        let evaluated = selection.into_iter().map(|f| (f, self.state.probability(f))).collect();
        Some(StepReport { round: self.rounds, evaluated, trust: self.state.trust().clone() })
    }

    /// Drains the remaining rounds and assembles the final result.
    ///
    /// # Errors
    /// Propagates result-assembly errors (never expected for in-range
    /// probabilities).
    pub fn finish(mut self) -> Result<CorroborationResult, CoreError> {
        while self.step().is_some() {}
        let trust = self.state.trust().clone();
        CorroborationResult::new(
            self.state.into_probabilities(),
            trust,
            Some(self.trajectory),
            self.rounds,
        )
    }
}

fn replace_last(mut trajectory: TrustTrajectory, snapshot: TrustSnapshot) -> TrustTrajectory {
    // TrustTrajectory has no pop; rebuild without the last entry.
    let mut rebuilt = TrustTrajectory::new();
    let len = trajectory.len();
    for (i, snap) in trajectory.iter().enumerate() {
        if i + 1 < len {
            rebuilt.push(snap.clone());
        }
    }
    rebuilt.push(snapshot);
    let _ = &mut trajectory;
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inc::{IncEstHeu, IncEstimate, IncEstimateConfig};
    use corroborate_core::corroborator::Corroborator;
    use corroborate_datagen::motivating::motivating_example;

    fn fid(i: usize) -> FactId {
        FactId::new(i)
    }

    #[test]
    fn stepping_matches_the_one_shot_run() {
        let ds = motivating_example();
        let mut session =
            IncEstimateSession::new(&ds, IncEstHeu::default(), IncEstimateConfig::default())
                .unwrap();
        let mut steps = 0;
        while session.step().is_some() {
            steps += 1;
        }
        assert_eq!(session.rounds(), steps);
        let stepped = {
            let session =
                IncEstimateSession::new(&ds, IncEstHeu::default(), IncEstimateConfig::default())
                    .unwrap();
            session.finish().unwrap()
        };
        let oneshot = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
        assert_eq!(stepped.probabilities(), oneshot.probabilities());
        assert_eq!(stepped.rounds(), oneshot.rounds());
        assert_eq!(stepped.trust().values(), oneshot.trust().values());
    }

    #[test]
    fn step_reports_expose_round_contents() {
        let ds = motivating_example();
        let mut session =
            IncEstimateSession::new(&ds, IncEstHeu::default(), IncEstimateConfig::default())
                .unwrap();
        let report = session.step().expect("at least one round");
        assert_eq!(report.round, 1);
        assert!(!report.evaluated.is_empty());
        for &(f, p) in &report.evaluated {
            assert!(!session.state().is_remaining(f));
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(report.trust.n_sources(), ds.n_sources());
    }

    #[test]
    fn seeding_injects_knowledge_into_trust() {
        let ds = motivating_example();
        let cfg = IncEstimateConfig { prior_strength: 0.0, ..Default::default() };
        let mut session = IncEstimateSession::new(&ds, IncEstHeu::default(), cfg).unwrap();
        // Tell the session the analyst checked r5 (false) and r2 (true).
        session.seed(fid(4), Label::False).unwrap();
        session.seed(fid(1), Label::True).unwrap();
        // s4 voted T on r5 (wrong) and T on r2 (right) → trust 0.5; s1
        // voted T on both → 0.5 as well.
        let trust = session.state().trust();
        assert!((trust.trust(SourceId::new(3)) - 0.5).abs() < 1e-12);
        assert!((trust.trust(SourceId::new(0)) - 0.5).abs() < 1e-12);
        let r = session.finish().unwrap();
        // Seeded facts keep their injected labels in the result.
        assert!(!r.decisions().label(fid(4)).as_bool());
        assert!(r.decisions().label(fid(1)).as_bool());
    }

    #[test]
    fn seeding_the_golden_falses_uncovers_more() {
        // Semi-supervised: seeding the known-false r12 and r6 lets the
        // heuristic discredit s4 before round 1.
        let ds = motivating_example();
        let mut session =
            IncEstimateSession::new(&ds, IncEstHeu::default(), IncEstimateConfig::default())
                .unwrap();
        session.seed(fid(11), Label::False).unwrap();
        session.seed(fid(5), Label::False).unwrap();
        let seeded = session.finish().unwrap();
        let unseeded = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
        let seeded_acc = seeded.confusion(&ds).unwrap().accuracy();
        let unseeded_acc = unseeded.confusion(&ds).unwrap().accuracy();
        assert!(
            seeded_acc >= unseeded_acc,
            "seeding must not hurt: {seeded_acc} vs {unseeded_acc}"
        );
    }

    #[test]
    fn seed_validation() {
        let ds = motivating_example();
        let mut session =
            IncEstimateSession::new(&ds, IncEstHeu::default(), IncEstimateConfig::default())
                .unwrap();
        assert!(session.seed(fid(99), Label::True).is_err());
        session.seed(fid(0), Label::True).unwrap();
        assert!(session.seed(fid(0), Label::True).is_err(), "double seed rejected");
    }

    #[test]
    fn trajectory_counts_rounds_not_seeds() {
        let ds = motivating_example();
        let mut session =
            IncEstimateSession::new(&ds, IncEstHeu::default(), IncEstimateConfig::default())
                .unwrap();
        session.seed(fid(11), Label::False).unwrap();
        let r = session.finish().unwrap();
        assert_eq!(r.trajectory().unwrap().len(), r.rounds() + 1);
    }
}
