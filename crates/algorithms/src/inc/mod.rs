//! **IncEstimate** — the paper's contribution (Algorithm 1): incremental
//! corroboration with a *multi-value trust score* per source.
//!
//! Instead of deriving one global trust score and applying it to every
//! fact, IncEstimate evaluates facts in rounds (*time points*). At time
//! `t_i` a selection strategy picks a subset of the unevaluated facts;
//! those facts are scored with the Corrob rule (Equation 5) under the
//! *current* trust snapshot `σ_i(S)`, and the snapshot is then updated from
//! the outcomes: a source's trust value at `t_{i+1}` is the fraction of its
//! votes on evaluated facts that agree with the (rounded) evaluation
//! results — which reproduces the §2.3 walkthrough exactly.
//!
//! The fact-selection strategy is pluggable via [`SelectionStrategy`]:
//!
//! - [`IncEstHeu`] — the paper's entropy heuristic
//!   (Algorithm 2): rank fact groups by the projected change in the
//!   collective entropy of the remaining facts and evaluate a balanced
//!   pair of the best positive and best negative groups (see
//!   [`DeltaHMode`] for the supported readings of Equation 9);
//! - [`IncEstPS`] — the naive comparison strategy
//!   (§6.1.1): always evaluate the highest-probability group;
//! - [`FixedSchedule`] — a scripted round schedule, used to reproduce the
//!   §2.3 walkthrough (Table 2's "Our strategy" row) and for testing.

mod heuristic;
#[cfg(test)]
mod naive_ref;
mod par;
mod prob_select;
mod session;
mod shard;

pub use heuristic::{DeltaHMode, IncEstHeu};
pub use par::{map_indexed, resolve_threads};
pub use prob_select::IncEstPS;
pub use session::{IncEstimateSession, StepReport};
pub use shard::{ShardConfig, DEFAULT_SHARDS};

use corroborate_core::groups::{group_by_signature, FactGroup};
use corroborate_core::index::SourceGroupIndex;
use corroborate_core::prelude::*;
use corroborate_core::scoring::corrob_probability_or;
use corroborate_obs::{Counter, NoopObserver, Observer, Span, NOOP};

use crate::{traced, OBS_EMIT};

/// Configuration shared by every IncEstimate strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncEstimateConfig {
    /// Default trust for every source at `t_0`, and the value a source
    /// keeps while none of its votes have been evaluated (the paper uses
    /// 0.9 and observes any default above 0.5 yields the same result).
    pub initial_trust: f64,
    /// Probability assigned to facts with no votes at all.
    pub voteless_prior: f64,
    /// Bayesian smoothing of the trust update: the update behaves as if
    /// each source came with `prior_strength` pseudo-votes agreeing at
    /// `initial_trust`, i.e. `σ(s) = (matches + k·σ₀) / (total + k)`.
    ///
    /// A small positive value (default 0.1) keeps trust estimates off the
    /// exact `1.0` / `0.5` boundaries. This matters: with the raw match
    /// fraction, early rounds saturate every credited source at exactly
    /// 1.0, which parks every mixed `{T, F}` signature at a Corrob score
    /// of exactly 0.5 — permanent limbo under §5.1's strict partition —
    /// and the incremental cascade never starts. With smoothing, the
    /// trust trajectories dip gradually, exactly as the paper's
    /// Figure 2(b) shows. Set to 0 for the raw §2.3-walkthrough
    /// arithmetic.
    pub prior_strength: f64,
    /// Shard/thread layout of the engine core. The default is the
    /// parallel configuration (auto shards, auto threads); every setting
    /// produces bit-identical results — the shard partition and merge are
    /// deterministic and seed-independent — so this only tunes wall-clock.
    pub shard: ShardConfig,
}

impl Default for IncEstimateConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            voteless_prior: 0.9,
            prior_strength: 0.1,
            shard: ShardConfig::default(),
        }
    }
}

impl IncEstimateConfig {
    fn validate(&self) -> Result<(), CoreError> {
        corroborate_core::error::check_probability("initial trust", self.initial_trust)?;
        corroborate_core::error::check_probability("voteless prior", self.voteless_prior)?;
        if !(self.prior_strength >= 0.0 && self.prior_strength.is_finite()) {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "prior_strength must be finite and non-negative, got {}",
                    self.prior_strength
                ),
            });
        }
        Ok(())
    }
}

/// The evolving state of an IncEstimate run, exposed read-only to
/// [`SelectionStrategy`] implementations.
///
/// Generic over the attached [`Observer`] (static dispatch): with the
/// default [`NoopObserver`] every telemetry hook monomorphises to nothing,
/// so uninstrumented runs compile to the pre-telemetry code exactly.
#[derive(Debug)]
pub struct IncState<'a, O: Observer = NoopObserver> {
    /// Telemetry sink; `&NOOP` unless built via
    /// [`IncEstimateSession::with_observer`].
    obs: &'a O,
    dataset: &'a Dataset,
    config: IncEstimateConfig,
    /// `true` while the fact is still unevaluated.
    remaining_mask: Vec<bool>,
    remaining_count: usize,
    /// Current trust snapshot σ_i(S).
    trust: TrustSnapshot,
    /// Per-source counters over evaluated facts: votes agreeing with the
    /// rounded evaluation result / total votes evaluated.
    matches: Vec<u32>,
    totals: Vec<u32>,
    /// Evaluated probability per fact (config prior until evaluated).
    probs: Vec<f64>,
    /// Signature groups in canonical order, maintained incrementally:
    /// evaluating a fact removes it from its group (groups drain to empty
    /// rather than being removed, so group indices stay stable), and
    /// strategies iterate the live ones via
    /// [`remaining_groups`](Self::remaining_groups) without any per-round
    /// re-grouping or cloning.
    groups: Vec<FactGroup>,
    /// Group index of each fact.
    group_of: Vec<usize>,
    /// Source→group inverted index over `groups`; postings never change.
    index: SourceGroupIndex,
    /// Sharded per-group caches (Corrob probability, entropy, dirty
    /// tracking), partitioned by signature hash: a round only recomputes
    /// the groups voted on by sources whose trust value actually moved —
    /// O(votes of changed sources) instead of O(total votes) — and the
    /// recomputation fans out over shards on scoped worker threads.
    caches: shard::ShardCaches,
    /// Resolved worker-thread count for shard fan-out (never affects
    /// results, only wall-clock).
    threads: usize,
}

impl<'a> IncState<'a> {
    /// State with the no-op observer. Defined only on the
    /// `IncState<'a, NoopObserver>` instantiation so `IncState::new` in the
    /// tests keeps inferring the default observer (the engine itself goes
    /// through [`Self::with_observer`]).
    #[cfg(test)]
    fn new(dataset: &'a Dataset, config: IncEstimateConfig) -> Result<Self, CoreError> {
        Self::with_observer(dataset, config, &NOOP)
    }
}

impl<'a, O: Observer> IncState<'a, O> {
    fn with_observer(
        dataset: &'a Dataset,
        config: IncEstimateConfig,
        obs: &'a O,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let all_facts: Vec<FactId> = dataset.facts().collect();
        let groups = group_by_signature(dataset.votes(), &all_facts);
        let mut group_of = vec![0usize; dataset.n_facts()];
        for (gi, g) in groups.iter().enumerate() {
            for &f in &g.facts {
                group_of[f.index()] = gi;
            }
        }
        let index = SourceGroupIndex::build(&groups, dataset.n_sources());
        let trust = TrustSnapshot::uniform(dataset.n_sources(), config.initial_trust)?;
        let caches = shard::ShardCaches::build(
            &groups,
            &trust,
            config.voteless_prior,
            config.shard.resolved_shards(),
        );
        let threads = config.shard.resolved_threads();
        if O::ENABLED && OBS_EMIT {
            obs.add(Counter::Shards, caches.n_shards() as u64);
            obs.add(Counter::ShardImbalance, caches.plan().imbalance() as u64);
        }
        Ok(Self {
            obs,
            dataset,
            config,
            remaining_mask: vec![true; dataset.n_facts()],
            remaining_count: dataset.n_facts(),
            trust,
            matches: vec![0; dataset.n_sources()],
            totals: vec![0; dataset.n_sources()],
            probs: vec![config.voteless_prior; dataset.n_facts()],
            groups,
            group_of,
            index,
            caches,
            threads,
        })
    }

    /// Detaches `fact` from its signature group (fact becomes evaluated).
    fn remove_from_group(&mut self, fact: FactId) {
        let group = &mut self.groups[self.group_of[fact.index()]];
        if let Ok(pos) = group.facts.binary_search(&fact) {
            group.facts.remove(pos);
        }
    }

    /// Total signature-group count including drained groups — see
    /// [`groups`](Self::groups).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The dataset under corroboration.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The attached telemetry observer.
    pub fn observer(&self) -> &'a O {
        self.obs
    }

    /// Collective entropy of the unevaluated population:
    /// `Σ_g |FG_g| · H(p_g)` over live groups, from the entropy cache.
    ///
    /// O(groups) — intended for telemetry (the per-round ΔH trajectory),
    /// not for hot-path scoring; emission sites only compute it when the
    /// observer is enabled.
    pub fn remaining_entropy(&self) -> f64 {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.facts.is_empty())
            .map(|(gi, g)| g.facts.len() as f64 * self.caches.entropy(gi))
            .sum()
    }

    /// The active configuration.
    pub fn config(&self) -> &IncEstimateConfig {
        &self.config
    }

    /// The current trust snapshot `σ_i(S)`.
    pub fn trust(&self) -> &TrustSnapshot {
        &self.trust
    }

    /// Number of facts not yet evaluated.
    pub fn remaining_count(&self) -> usize {
        self.remaining_count
    }

    /// `true` while `fact` has not been evaluated.
    pub fn is_remaining(&self, fact: FactId) -> bool {
        self.remaining_mask[fact.index()]
    }

    /// The unevaluated facts, ascending by id.
    pub fn remaining_facts(&self) -> Vec<FactId> {
        self.remaining_mask
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| FactId::new(i))
            .collect()
    }

    /// The unevaluated facts grouped by vote signature (§5.1), in
    /// deterministic canonical order (equal to
    /// [`group_by_signature`] over [`remaining_facts`](Self::remaining_facts)
    /// — maintained incrementally, see the struct docs).
    ///
    /// This is a borrowed view: no per-round clone of the group list.
    pub fn remaining_groups(&self) -> impl Iterator<Item = &FactGroup> + '_ {
        self.groups.iter().filter(|g| !g.facts.is_empty())
    }

    /// All signature groups in canonical order, *including* drained ones
    /// (empty `facts`) — indices into this slice are stable for the whole
    /// run and key the probability cache and the inverted index.
    pub fn groups(&self) -> &[FactGroup] {
        &self.groups
    }

    /// Cached Corrob probability of group `group` (an index into
    /// [`groups`](Self::groups)) under the current trust snapshot.
    ///
    /// For live groups this is bit-identical to recomputing
    /// [`signature_probability`](Self::signature_probability) on the
    /// group's signature: the cache is refreshed with the same kernel
    /// whenever a voting source's trust value changes. Groups that drained
    /// to empty are compacted out of the index and may retain a stale
    /// value.
    pub fn group_probability(&self, group: usize) -> f64 {
        self.caches.probability(group)
    }

    /// Cached binary entropy of [`group_probability`](Self::group_probability)
    /// — bit-identical to calling
    /// [`binary_entropy`](corroborate_core::entropy::binary_entropy) on it,
    /// refreshed in the same dirty pass as the probability cache.
    pub fn group_entropy(&self, group: usize) -> f64 {
        self.caches.entropy(group)
    }

    /// Effective shard count of the partitioned engine caches (after
    /// auto-resolution and group-count clamping).
    pub fn n_shards(&self) -> usize {
        self.caches.n_shards()
    }

    /// Resolved worker-thread count for shard fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-shard polarity winners for the self-term ΔH argmax, in shard
    /// order (parallel scan; see [`shard`]). Private to `inc`, used by the
    /// heuristic strategy.
    fn shard_scans(&self) -> Vec<shard::ShardScan> {
        self.caches.polarity_scans(&self.groups, self.threads)
    }

    /// The source→group inverted index over [`groups`](Self::groups).
    pub fn source_index(&self) -> &SourceGroupIndex {
        &self.index
    }

    /// Group index of `fact` in [`groups`](Self::groups).
    pub fn group_of(&self, fact: FactId) -> usize {
        self.group_of[fact.index()]
    }

    /// Corrob probability of a vote signature under the current trust.
    pub fn signature_probability(&self, signature: &[corroborate_core::vote::SourceVote]) -> f64 {
        corrob_probability_or(signature, &self.trust, self.config.voteless_prior)
    }

    /// Corrob probability of a single fact under the current trust.
    pub fn fact_probability(&self, fact: FactId) -> f64 {
        self.signature_probability(self.dataset.votes().votes_on(fact))
    }

    /// Projected trust of `source` if `extra_total` additional evaluated
    /// votes were recorded for it, `extra_matches` of them agreeing.
    ///
    /// Applies the configured smoothing
    /// `(matches + k·σ₀) / (total + k)`; a source with no evaluated votes
    /// therefore keeps the default trust — the §2.3 walkthrough's `'-'`
    /// entries.
    pub fn projected_trust(&self, source: SourceId, extra_matches: u32, extra_total: u32) -> f64 {
        let total = f64::from(self.totals[source.index()] + extra_total);
        let matches = f64::from(self.matches[source.index()] + extra_matches);
        let k = self.config.prior_strength;
        if total + k == 0.0 {
            return self.config.initial_trust;
        }
        (matches + k * self.config.initial_trust) / (total + k)
    }

    /// The probability recorded for `fact` (the configured prior while it
    /// is still unevaluated).
    pub fn probability(&self, fact: FactId) -> f64 {
        self.probs[fact.index()]
    }

    /// Consumes the state, yielding the per-fact probabilities.
    pub(crate) fn into_probabilities(self) -> Vec<f64> {
        self.probs
    }

    /// Marks `fact` as evaluated with an externally-known `label`
    /// (probability 1/0), updating counters and trust — the
    /// semi-supervised seeding primitive used by
    /// [`IncEstimateSession::seed`].
    pub(crate) fn seed(&mut self, fact: FactId, label: Label) {
        debug_assert!(self.remaining_mask[fact.index()]);
        self.probs[fact.index()] = if label.as_bool() { 1.0 } else { 0.0 };
        self.remaining_mask[fact.index()] = false;
        self.remaining_count -= 1;
        self.remove_from_group(fact);
        for sv in self.dataset.votes().votes_on(fact) {
            self.totals[sv.source.index()] += 1;
            if sv.vote.as_bool() == label.as_bool() {
                self.matches[sv.source.index()] += 1;
            }
        }
        self.refresh_trust_and_cache();
    }

    /// Recomputes the trust snapshot from the counters, then refreshes the
    /// group-probability cache for exactly the groups voted on by sources
    /// whose trust value moved (dirty tracking over the inverted index).
    ///
    /// Also compacts groups that drained to empty out of the posting lists
    /// first, so spillover walks and dirty marking stay proportional to the
    /// live degree of each source. Dead groups contribute nothing to either,
    /// so compaction never changes results.
    fn refresh_trust_and_cache(&mut self) {
        let obs = self.obs;
        traced(obs, Span::CacheRefresh, self.caches.n_shards() as u64, || {
            let groups = &self.groups;
            let compacted = self.index.retain_groups(|gi| !groups[gi].facts.is_empty());
            for s in self.dataset.sources() {
                let updated = self.projected_trust(s, 0, 0);
                if updated.to_bits() != self.trust.trust(s).to_bits() {
                    for posting in self.index.groups_of(s) {
                        self.caches.mark_dirty(posting.group);
                    }
                }
                self.trust.set(s, updated);
            }
            // Shard-parallel recompute of the dirty entries: each slab is
            // refreshed by exactly one worker, and entries are independent,
            // so the refreshed caches are bit-identical for any thread
            // count (including 1).
            let stats = self.caches.refresh(
                &self.groups,
                &self.trust,
                self.config.voteless_prior,
                self.threads,
            );
            if O::ENABLED && OBS_EMIT {
                obs.add(Counter::PostingsCompacted, compacted as u64);
                if stats.groups_recomputed > 0 {
                    obs.add(Counter::CacheRefreshes, 1);
                    obs.add(Counter::GroupsRecomputed, stats.groups_recomputed as u64);
                    obs.add(Counter::ShardTasks, stats.shard_tasks as u64);
                }
            }
        });
    }

    /// Evaluates `facts` at the current time point: fixes their
    /// probabilities under `σ_i(S)`, folds the rounded outcomes into the
    /// per-source counters, and recomputes the trust snapshot `σ_{i+1}(S)`.
    pub(crate) fn evaluate(&mut self, facts: &[FactId]) {
        let obs = self.obs;
        traced(obs, Span::Evaluate, facts.len() as u64, || {
            let mut detach: Vec<(usize, FactId)> = Vec::with_capacity(facts.len());
            for &f in facts {
                debug_assert!(self.remaining_mask[f.index()], "fact evaluated twice: {f}");
                // The cached group probability is valid throughout the loop:
                // evaluation fixes probabilities under σ_i, and the snapshot
                // only advances in refresh_trust_and_cache below.
                let gi = self.group_of[f.index()];
                let p = self.caches.probability(gi);
                self.probs[f.index()] = p;
                self.remaining_mask[f.index()] = false;
                self.remaining_count -= 1;
                detach.push((gi, f));
                let outcome = Label::from_probability(p);
                for sv in self.dataset.votes().votes_on(f) {
                    self.totals[sv.source.index()] += 1;
                    if sv.vote.as_bool() == outcome.as_bool() {
                        self.matches[sv.source.index()] += 1;
                    }
                }
            }
            // Batched detach: one retain pass per touched group instead of
            // one O(|FG|) Vec::remove per fact — the final mass round over
            // a large group would otherwise drain it quadratically.
            detach.sort_unstable();
            let mut k = 0;
            while k < detach.len() {
                let gi = detach[k].0;
                let mut end = k + 1;
                while end < detach.len() && detach[end].0 == gi {
                    end += 1;
                }
                remove_batch_from_group(&mut self.groups[gi].facts, &detach[k..end]);
                k = end;
            }
            self.refresh_trust_and_cache();
        });
        if O::ENABLED && OBS_EMIT {
            obs.add(Counter::FactsEvaluated, facts.len() as u64);
        }
    }
}

/// Removes every fact of `dead` (sorted `(group, fact)` runs for a single
/// group) from the sorted member list in one merge pass — O(|FG| + batch)
/// instead of O(|FG| · batch).
fn remove_batch_from_group(members: &mut Vec<FactId>, dead: &[(usize, FactId)]) {
    let mut di = 0;
    members.retain(|&f| {
        while di < dead.len() && dead[di].1 < f {
            di += 1;
        }
        !(di < dead.len() && dead[di].1 == f)
    });
}

/// A fact-selection strategy for IncEstimate (the paper's
/// `Select_Facts(F̄, σ(S))`).
///
/// `select` is generic over the state's [`Observer`] (static dispatch —
/// this trait is never used as a trait object); strategies may emit
/// telemetry through [`IncState::observer`], and must produce bit-identical
/// selections whatever observer is attached.
pub trait SelectionStrategy {
    /// Strategy name used in result tables (e.g. `"IncEstHeu"`).
    fn name(&self) -> &str;

    /// Picks the facts to evaluate at the current time point. Every
    /// returned id must still be unevaluated; returning an empty vector
    /// makes the engine evaluate all remaining facts in one final round.
    fn select<O: Observer>(&self, state: &IncState<'_, O>) -> Vec<FactId>;
}

impl<S: SelectionStrategy + ?Sized> SelectionStrategy for &S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn select<O: Observer>(&self, state: &IncState<'_, O>) -> Vec<FactId> {
        (**self).select(state)
    }
}

/// The IncEstimate engine (Algorithm 1), generic over the selection
/// strategy.
#[derive(Debug, Clone)]
pub struct IncEstimate<S> {
    strategy: S,
    config: IncEstimateConfig,
}

impl<S: SelectionStrategy> IncEstimate<S> {
    /// Engine with the default configuration.
    pub fn new(strategy: S) -> Self {
        Self { strategy, config: IncEstimateConfig::default() }
    }

    /// Engine with an explicit configuration.
    pub fn with_config(strategy: S, config: IncEstimateConfig) -> Self {
        Self { strategy, config }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// [`Corroborator::corroborate`] with telemetry: the run streams
    /// per-round records, pruning-tier counters, and span timings into
    /// `obs`. With [`NoopObserver`] this is exactly `corroborate`.
    ///
    /// # Errors
    /// Propagates configuration validation and result-assembly errors.
    pub fn corroborate_observed<O: Observer>(
        &self,
        dataset: &Dataset,
        obs: &O,
    ) -> Result<CorroborationResult, CoreError> {
        IncEstimateSession::with_observer(dataset, &self.strategy, self.config, obs)?.finish()
    }
}

impl<S: SelectionStrategy> Corroborator for IncEstimate<S> {
    fn name(&self) -> &str {
        self.strategy.name()
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        self.corroborate_observed(dataset, &NOOP)
    }
}

/// A scripted selection strategy: round `i` evaluates the `i`-th listed
/// set (facts already evaluated are skipped); once the script is exhausted
/// all remaining facts are evaluated in one final round.
///
/// Reproduces hand-designed schedules such as the §2.3 walkthrough.
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    name: String,
    rounds: Vec<Vec<FactId>>,
    cursor: std::cell::Cell<usize>,
}

impl FixedSchedule {
    /// Creates a schedule with the given per-round fact sets.
    pub fn new(name: impl Into<String>, rounds: Vec<Vec<FactId>>) -> Self {
        Self { name: name.into(), rounds, cursor: std::cell::Cell::new(0) }
    }
}

impl SelectionStrategy for FixedSchedule {
    fn name(&self) -> &str {
        &self.name
    }

    fn select<O: Observer>(&self, _state: &IncState<'_, O>) -> Vec<FactId> {
        let i = self.cursor.get();
        self.cursor.set(i + 1);
        self.rounds.get(i).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    fn fid(i: usize) -> FactId {
        FactId::new(i)
    }
    fn sid(i: usize) -> SourceId {
        SourceId::new(i)
    }

    /// The §2.3 walkthrough, verbatim: round 1 = {r9, r12}, round 2 =
    /// {r5, r6}, round 3 = the rest. Table 1 ids are 0-based (r1 = f0).
    #[test]
    fn section_2_3_walkthrough_reproduces_exactly() {
        let ds = motivating_example();
        let schedule =
            FixedSchedule::new("Walkthrough", vec![vec![fid(8), fid(11)], vec![fid(4), fid(5)]]);
        // The walkthrough's arithmetic uses the raw match fraction.
        let cfg = IncEstimateConfig { prior_strength: 0.0, ..Default::default() };
        let r = IncEstimate::with_config(schedule, cfg).corroborate(&ds).unwrap();

        // Round-1 outcomes: r9 true, r12 false.
        assert!(r.decisions().label(fid(8)).as_bool());
        assert!(!r.decisions().label(fid(11)).as_bool());
        // Round-2 outcomes: both false.
        assert!(!r.decisions().label(fid(4)).as_bool());
        assert!(!r.decisions().label(fid(5)).as_bool());
        // Round 3: everything else true.
        for i in [0, 1, 2, 3, 6, 7, 9, 10] {
            assert!(r.decisions().label(fid(i)).as_bool(), "r{}", i + 1);
        }

        // Trust trajectory: t0 = defaults, t1 = {-,1,1,0,1},
        // t2 = {0,1,1,0,1}, t3 = {0.67,1,1,0.7,1}.
        let traj = r.trajectory().unwrap();
        assert_eq!(traj.len(), 4);
        let t1 = traj.at(1).unwrap();
        assert_eq!(t1.trust(sid(0)), 0.9); // '-' → keeps default
        assert_eq!(t1.trust(sid(1)), 1.0);
        assert_eq!(t1.trust(sid(2)), 1.0);
        assert_eq!(t1.trust(sid(3)), 0.0);
        assert_eq!(t1.trust(sid(4)), 1.0);
        let t2 = traj.at(2).unwrap();
        assert_eq!(t2.trust(sid(0)), 0.0);
        assert_eq!(t2.trust(sid(3)), 0.0);
        let t3 = traj.at(3).unwrap();
        assert!((t3.trust(sid(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t3.trust(sid(1)), 1.0);
        assert_eq!(t3.trust(sid(2)), 1.0);
        assert!((t3.trust(sid(3)) - 0.7).abs() < 1e-12);
        assert_eq!(t3.trust(sid(4)), 1.0);

        // Table 2, "Our strategy" row: P = 0.78, R = 1, A = 0.83.
        let m = r.confusion(&ds).unwrap();
        assert!((m.precision() - 7.0 / 9.0).abs() < 1e-9);
        assert_eq!(m.recall(), 1.0);
        assert!((m.accuracy() - 10.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn round_2_probabilities_match_walkthrough() {
        // "Note that although we have T votes from s4 for both restaurants,
        // since it has a trust score of 0 from the first round, the
        // corroboration assigns a low score for both restaurants."
        let ds = motivating_example();
        let schedule = FixedSchedule::new("W", vec![vec![fid(8), fid(11)], vec![fid(4), fid(5)]]);
        let cfg = IncEstimateConfig { prior_strength: 0.0, ..Default::default() };
        let r = IncEstimate::with_config(schedule, cfg).corroborate(&ds).unwrap();
        // r5 = (σ(s1)=0.9 default + σ(s4)=0) / 2 = 0.45.
        assert!((r.probability(fid(4)) - 0.45).abs() < 1e-12);
        // r6 = ((1 − σ(s3)=1) + σ(s4)=0) / 2 = 0.
        assert!((r.probability(fid(5)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_evaluates_everything_in_one_round() {
        let ds = motivating_example();
        let r = IncEstimate::new(FixedSchedule::new("OneShot", vec![])).corroborate(&ds).unwrap();
        assert_eq!(r.rounds(), 1);
        // All facts scored under the uniform default trust: every T-only
        // fact gets 0.9; r12 gets (0.1+0.1+0.9)/3; r6 gets 0.5 → true.
        assert!((r.probability(fid(0)) - 0.9).abs() < 1e-12);
        assert!(!r.decisions().label(fid(11)).as_bool());
    }

    #[test]
    fn schedule_skips_already_evaluated_facts() {
        let ds = motivating_example();
        let schedule = FixedSchedule::new("Dup", vec![vec![fid(0), fid(1)], vec![fid(1), fid(2)]]);
        let r = IncEstimate::new(schedule).corroborate(&ds).unwrap();
        // Must terminate and evaluate every fact exactly once.
        assert_eq!(r.probabilities().len(), 12);
        assert_eq!(r.rounds(), 3);
    }

    #[test]
    fn trajectory_starts_with_uniform_default() {
        let ds = motivating_example();
        let r =
            IncEstimate::new(FixedSchedule::new("X", vec![vec![fid(0)]])).corroborate(&ds).unwrap();
        let t0 = r.trajectory().unwrap().at(0).unwrap();
        for s in ds.sources() {
            assert_eq!(t0.trust(s), 0.9);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let ds = motivating_example();
        let cfg = IncEstimateConfig { initial_trust: -0.2, ..Default::default() };
        let e = IncEstimate::with_config(FixedSchedule::new("X", vec![]), cfg).corroborate(&ds);
        assert!(e.is_err());
        let cfg = IncEstimateConfig { prior_strength: -1.0, ..Default::default() };
        let e = IncEstimate::with_config(FixedSchedule::new("X", vec![]), cfg).corroborate(&ds);
        assert!(e.is_err());
    }

    #[test]
    fn smoothing_keeps_trust_off_the_boundaries() {
        // With the default prior strength, a source with one agreeing
        // evaluated vote sits just below 1.0 and one with one
        // disagreeing vote just above 0.0 — never exactly saturated.
        let ds = motivating_example();
        let state = IncState::new(&ds, IncEstimateConfig::default()).unwrap();
        let up = state.projected_trust(sid(0), 1, 1);
        let down = state.projected_trust(sid(0), 0, 1);
        assert!(up < 1.0 && up > 0.95, "up = {up}");
        assert!(down > 0.0 && down < 0.1, "down = {down}");
        // No evaluated votes → exactly the default.
        assert_eq!(state.projected_trust(sid(0), 0, 0), 0.9);
    }

    #[test]
    fn cached_groups_match_recomputed_grouping_mid_run() {
        use corroborate_core::groups::group_by_signature;
        let ds = motivating_example();
        let mut state = IncState::new(&ds, IncEstimateConfig::default()).unwrap();
        // Evaluate an arbitrary mix, including whole and partial groups.
        state.evaluate(&[fid(0), fid(6), fid(11)]);
        let cached: Vec<_> = state.remaining_groups().cloned().collect();
        let recomputed = group_by_signature(ds.votes(), &state.remaining_facts());
        assert_eq!(cached, recomputed);
        state.evaluate(&[fid(7)]);
        assert_eq!(
            state.remaining_groups().cloned().collect::<Vec<_>>(),
            group_by_signature(ds.votes(), &state.remaining_facts())
        );
    }

    #[test]
    fn group_probability_cache_tracks_trust_updates() {
        let ds = motivating_example();
        let mut state = IncState::new(&ds, IncEstimateConfig::default()).unwrap();
        let check = |state: &IncState<'_>| {
            // Drained groups are compacted out of the index and may keep a
            // stale cache entry; the contract covers live groups only.
            for (gi, g) in state.groups().iter().enumerate().filter(|(_, g)| !g.facts.is_empty()) {
                let fresh = state.signature_probability(&g.signature);
                assert_eq!(
                    state.group_probability(gi).to_bits(),
                    fresh.to_bits(),
                    "group {gi} cache drifted: {} vs {}",
                    state.group_probability(gi),
                    fresh
                );
            }
        };
        check(&state);
        state.evaluate(&[fid(8), fid(11)]);
        check(&state);
        state.evaluate(&[fid(4), fid(5)]);
        check(&state);
        state.seed(fid(0), Label::True);
        check(&state);
    }

    #[test]
    fn inverted_index_covers_every_group_signature() {
        let ds = motivating_example();
        let state = IncState::new(&ds, IncEstimateConfig::default()).unwrap();
        let index = state.source_index();
        let total: usize = state.groups().iter().map(|g| g.signature.len()).sum();
        assert_eq!(index.n_postings(), total);
        for (gi, g) in state.groups().iter().enumerate() {
            for sv in &g.signature {
                assert!(
                    index.groups_of(sv.source).iter().any(|p| p.group == gi),
                    "posting missing for source {} group {gi}",
                    sv.source
                );
            }
        }
    }

    #[test]
    fn state_projected_trust_uses_default_until_first_vote() {
        let ds = motivating_example();
        let cfg = IncEstimateConfig { prior_strength: 0.0, ..Default::default() };
        let state = IncState::new(&ds, cfg).unwrap();
        assert_eq!(state.projected_trust(sid(0), 0, 0), 0.9);
        assert_eq!(state.projected_trust(sid(0), 1, 2), 0.5);
        assert_eq!(state.remaining_count(), 12);
        assert_eq!(state.remaining_groups().count(), 10); // r7=r8, r4=r10 merge
    }
}
