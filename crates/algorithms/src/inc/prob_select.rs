//! **IncEstPS** — the naive probability-greedy selection strategy the paper
//! implements as a foil (§6.1.1): at each time point, evaluate the fact
//! group with the highest Corrob probability.
//!
//! The paper's observation, which the tests below pin down, is that this
//! strategy keeps selecting groups that evaluate true, so source trust
//! stays saturated at 1 until only F-voted facts remain, and almost nothing
//! is uncovered — its quality ends up close to TwoEstimate's.

use corroborate_core::ids::FactId;
use corroborate_obs::Observer;

use super::{IncState, SelectionStrategy};

/// The probability-greedy selection strategy. See the module-level documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncEstPS;

impl SelectionStrategy for IncEstPS {
    fn name(&self) -> &str {
        "IncEstPS"
    }

    fn select<O: Observer>(&self, state: &IncState<'_, O>) -> Vec<FactId> {
        let groups = state.groups();
        let mut best: Option<(f64, usize)> = None;
        for (gi, g) in groups.iter().enumerate() {
            if g.facts.is_empty() {
                continue;
            }
            let p = state.group_probability(gi);
            // Strictly-greater keeps the first (canonical-order) group on
            // ties → deterministic.
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, gi));
            }
        }
        match best {
            Some((_, gi)) => groups[gi].facts.clone(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galland::TwoEstimates;
    use crate::inc::{IncEstHeu, IncEstimate};
    use corroborate_core::prelude::*;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn covers_every_fact_and_terminates() {
        let ds = motivating_example();
        let r = IncEstimate::new(IncEstPS).corroborate(&ds).unwrap();
        assert_eq!(r.probabilities().len(), ds.n_facts());
        assert!(r.rounds() >= 2, "greedy must still take multiple rounds");
    }

    #[test]
    fn trust_stays_saturated_while_t_only_facts_remain() {
        // §6.2.4: "the trust scores for the sources remain at 1 until all
        // facts with only T votes have been evaluated".
        let ds = motivating_example();
        let r = IncEstimate::new(IncEstPS).corroborate(&ds).unwrap();
        let traj = r.trajectory().unwrap();
        // After the first round, every source with evaluated votes is at 1
        // (selected groups keep evaluating true) for the early rounds.
        let t1 = traj.at(1).unwrap();
        for s in ds.sources() {
            let t = t1.trust(s);
            assert!(t > 0.89, "s{} = {}", s.index(), t);
        }
    }

    #[test]
    fn matches_two_estimates_quality_on_motivating_example() {
        // "The IncEstPS strategy has a similar result as existing
        // approaches" — on this instance its decisions coincide with
        // TwoEstimate's (everything true except r12).
        let ds = motivating_example();
        let ps = IncEstimate::new(IncEstPS).corroborate(&ds).unwrap();
        let two = TwoEstimates::default().corroborate(&ds).unwrap();
        assert_eq!(ps.decisions().labels(), two.decisions().labels());
    }

    #[test]
    fn heuristic_is_at_least_as_accurate_as_greedy() {
        let ds = motivating_example();
        let ps =
            IncEstimate::new(IncEstPS).corroborate(&ds).unwrap().confusion(&ds).unwrap().accuracy();
        let heu = IncEstimate::new(IncEstHeu::default())
            .corroborate(&ds)
            .unwrap()
            .confusion(&ds)
            .unwrap()
            .accuracy();
        assert!(heu >= ps);
    }

    #[test]
    fn selects_the_highest_probability_group_first() {
        let ds = motivating_example();
        let state = super::super::IncState::new(&ds, Default::default()).unwrap();
        let sel = IncEstPS.select(&state);
        // All initial T-only groups tie at 0.9; the canonical first one
        // wins. Whatever it is, its facts must score 0.9 under defaults.
        assert!(!sel.is_empty());
        for f in sel {
            assert!((state.fact_probability(f) - 0.9).abs() < 1e-12);
        }
    }
}
