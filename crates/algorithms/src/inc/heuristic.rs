//! **IncEstHeu** — the paper's entropy-driven selection strategy
//! (Algorithm 2).
//!
//! At each time point the unevaluated facts are grouped by vote signature
//! and split into a *positive part* `P` (Corrob probability strictly above
//! 0.5 under the current trust — these would evaluate true) and a
//! *negative part* `N` (strictly below; §5.1 defines both parts strictly,
//! so groups sitting exactly on the boundary wait for later rounds). The
//! best group of each part is selected and `n = min(size(FG+), size(FG−))`
//! facts are evaluated from both, keeping the update balanced so neither
//! polarity dominates the trust scores.
//!
//! ## Ranking the groups — the ΔH score
//!
//! §5.1 frames selection as *maximising the collective entropy `H(F̄)` of
//! the unknown facts* after the round. Writing `F̄' = F̄ − FG` for the
//! facts remaining after evaluating group `FG`, the objective decomposes
//! as
//!
//! ```text
//! H_{i+1}(F̄') = H_i(F̄) − H_i(FG)                 (the self term)
//!             + Σ_{FG' ∈ F̄'} [H_{i+1}(FG') − H_i(FG')]   (the spillover)
//! ```
//!
//! The paper's Equation 9 writes only the spillover sum. This
//! implementation supports both terms via [`DeltaHMode`]:
//!
//! - [`DeltaHMode::SelfTerm`] (default) ranks by `−H_i(FG)` per fact —
//!   i.e. evaluates the *most confident* group of each part first,
//!   preserving the entropy of the still-uncertain facts. **This is the
//!   variant that reproduces the paper's experimental results**: on the
//!   §6.3.1 synthetic worlds it reaches the reported ~0.9+ accuracy, and
//!   its running time matches the paper's Table 6 (≈1 s on the
//!   36,916-listing dataset).
//! - [`DeltaHMode::Equation9`] is the literal spillover-only Equation 9.
//!   On the synthetic workloads it exhibits a *discrediting cascade*: it
//!   prefers borderline groups (their evaluation keeps spillover entropy
//!   high), mislabels them while source trust is still noisy, drags the
//!   voting sources below 0.5 and collapses (accuracy well below the
//!   baselines). It is kept for the ablation benches; it is also two
//!   orders of magnitude slower (measured ~150× at 4k facts), far from
//!   the paper's reported runtime.
//! - [`DeltaHMode::Full`] sums both terms (the literal collective-entropy
//!   objective); it inherits Equation 9's cascade on adversarial
//!   geometries.
//!
//! Special case (also §5.1): when one part is empty — all remaining facts
//! would evaluate to the same polarity — the strategy evaluates everything
//! that remains in one final round, exactly like the walkthrough's third
//! round.

use corroborate_core::entropy::binary_entropy;
use corroborate_core::groups::FactGroup;
use corroborate_core::ids::FactId;
use corroborate_core::vote::{SourceVote, Vote};

use super::{IncState, SelectionStrategy};

/// Which terms of the collective-entropy objective rank the fact groups.
/// See the module-level documentation for the full derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaHMode {
    /// Rank by the per-fact self term `−H(p)`: most confident group first.
    /// Default — reproduces the paper's results and running times.
    #[default]
    SelfTerm,
    /// Rank by the literal Equation 9 spillover sum.
    Equation9,
    /// Rank by self term + spillover (the full objective).
    Full,
}

/// The entropy-heuristic selection strategy. See the module-level documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncEstHeu {
    mode: DeltaHMode,
}

impl IncEstHeu {
    /// Strategy with an explicit ΔH mode.
    pub fn with_mode(mode: DeltaHMode) -> Self {
        Self { mode }
    }

    /// The active ΔH mode.
    pub fn mode(&self) -> DeltaHMode {
        self.mode
    }
}

/// Trust overlay: the projected trust of the sources affected by the
/// candidate group, sparse over source ids.
struct ProjectedTrust<'a> {
    state: &'a IncState<'a>,
    affected: Vec<(corroborate_core::ids::SourceId, f64)>,
}

impl ProjectedTrust<'_> {
    fn trust(&self, source: corroborate_core::ids::SourceId) -> f64 {
        self.affected
            .iter()
            .find(|(s, _)| *s == source)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| self.state.trust().trust(source))
    }

    /// Corrob probability of `signature` under the overlay.
    fn probability(&self, signature: &[SourceVote], prior: f64) -> f64 {
        if signature.is_empty() {
            return prior;
        }
        let sum: f64 = signature
            .iter()
            .map(|sv| match sv.vote {
                Vote::True => self.trust(sv.source),
                Vote::False => 1.0 - self.trust(sv.source),
            })
            .sum();
        sum / signature.len() as f64
    }
}

/// Computes the spillover sum of Equation 9 for the candidate group at
/// `candidate_idx`, given all remaining groups and their cached current
/// probabilities.
fn spillover(
    state: &IncState<'_>,
    groups: &[FactGroup],
    probs: &[f64],
    candidate_idx: usize,
) -> f64 {
    let candidate = &groups[candidate_idx];
    let p = probs[candidate_idx];
    let outcome = p >= 0.5;
    let size = candidate.facts.len() as u32;

    // Projected trust for the sources the candidate's evaluation touches.
    let affected: Vec<_> = candidate
        .signature
        .iter()
        .map(|sv| {
            let agrees = sv.vote.is_affirmative() == outcome;
            let extra_matches = if agrees { size } else { 0 };
            (sv.source, state.projected_trust(sv.source, extra_matches, size))
        })
        .collect();
    let overlay = ProjectedTrust { state, affected };

    let prior = state.config().voteless_prior;
    let mut dh = 0.0;
    for (gi, other) in groups.iter().enumerate() {
        if gi == candidate_idx {
            continue;
        }
        // Only groups sharing an affected source can change probability.
        let touched = other
            .signature
            .iter()
            .any(|sv| overlay.affected.iter().any(|(s, _)| *s == sv.source));
        if !touched {
            continue;
        }
        let p_new = overlay.probability(&other.signature, prior);
        dh += other.facts.len() as f64 * (binary_entropy(p_new) - binary_entropy(probs[gi]));
    }
    dh
}

impl SelectionStrategy for IncEstHeu {
    fn name(&self) -> &str {
        match self.mode {
            DeltaHMode::SelfTerm => "IncEstHeu",
            DeltaHMode::Equation9 => "IncEstHeu(eq9)",
            DeltaHMode::Full => "IncEstHeu(full)",
        }
    }

    fn select(&self, state: &IncState<'_>) -> Vec<FactId> {
        let groups = state.remaining_groups();
        let probs: Vec<f64> = groups
            .iter()
            .map(|g| state.signature_probability(&g.signature))
            .collect();

        // Strict partition (§5.1): positive above 0.5, negative below.
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            if p > 0.5 {
                positive.push(i);
            } else if p < 0.5 {
                negative.push(i);
            }
        }

        if positive.is_empty() || negative.is_empty() {
            // §5.1 terminal case: all remaining facts share one polarity —
            // evaluate them all (empty selection = engine evaluates rest).
            return Vec::new();
        }

        let score = |i: usize| -> f64 {
            match self.mode {
                DeltaHMode::SelfTerm => -binary_entropy(probs[i]),
                DeltaHMode::Equation9 => spillover(state, &groups, &probs, i),
                DeltaHMode::Full => {
                    spillover(state, &groups, &probs, i)
                        - groups[i].facts.len() as f64 * binary_entropy(probs[i])
                }
            }
        };
        let best = |part: &[usize]| -> usize {
            let mut best_i = part[0];
            let mut best_score = f64::NEG_INFINITY;
            for &i in part {
                let s = score(i);
                // Exact score ties are systematic at t_0 (every source has
                // the same default trust, so e.g. every T-only signature
                // scores identically). Break them by signature length —
                // more votes on a fact means stronger corroboration, so
                // its projected label is the safest to commit and the
                // per-source credit is spread over co-voting sources
                // instead of anointing one arbitrary source. Then larger
                // groups, then canonical order.
                let better = s > best_score
                    || (s == best_score
                        && (groups[i].signature.len() > groups[best_i].signature.len()
                            || (groups[i].signature.len() == groups[best_i].signature.len()
                                && groups[i].facts.len() > groups[best_i].facts.len())));
                if better {
                    best_score = s;
                    best_i = i;
                }
            }
            best_i
        };
        let fg_pos = &groups[best(&positive)];
        let fg_neg = &groups[best(&negative)];

        // Balanced pick: n facts from each, n = size of the smaller group.
        let n = fg_pos.facts.len().min(fg_neg.facts.len());
        let mut selection = Vec::with_capacity(2 * n);
        selection.extend_from_slice(&fg_pos.facts[..n]);
        selection.extend_from_slice(&fg_neg.facts[..n]);
        selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inc::IncEstimate;
    use corroborate_core::prelude::*;
    use corroborate_datagen::motivating::motivating_example;

    const MODES: [DeltaHMode; 3] =
        [DeltaHMode::SelfTerm, DeltaHMode::Equation9, DeltaHMode::Full];

    #[test]
    fn names_reflect_modes() {
        assert_eq!(IncEstHeu::default().name(), "IncEstHeu");
        assert_eq!(IncEstHeu::with_mode(DeltaHMode::Equation9).name(), "IncEstHeu(eq9)");
        assert_eq!(IncEstHeu::with_mode(DeltaHMode::Full).name(), "IncEstHeu(full)");
        assert_eq!(IncEstHeu::default().mode(), DeltaHMode::SelfTerm);
    }

    #[test]
    fn terminates_and_covers_every_fact_in_all_modes() {
        let ds = motivating_example();
        for mode in MODES {
            let r = IncEstimate::new(IncEstHeu::with_mode(mode))
                .corroborate(&ds)
                .unwrap();
            assert_eq!(r.probabilities().len(), ds.n_facts());
            assert!(r.rounds() >= 2, "{mode:?} must be genuinely incremental");
        }
    }

    #[test]
    fn beats_two_estimates_on_the_motivating_example() {
        use crate::galland::TwoEstimates;
        let ds = motivating_example();
        let two = TwoEstimates::default()
            .corroborate(&ds)
            .unwrap()
            .confusion(&ds)
            .unwrap()
            .accuracy();
        for mode in MODES {
            let heu = IncEstimate::new(IncEstHeu::with_mode(mode))
                .corroborate(&ds)
                .unwrap()
                .confusion(&ds)
                .unwrap()
                .accuracy();
            assert!(
                heu > two,
                "{mode:?}: IncEstHeu accuracy {heu} must beat TwoEstimate {two}"
            );
        }
    }

    #[test]
    fn identifies_r12_as_false_in_all_modes() {
        let ds = motivating_example();
        for mode in MODES {
            let r = IncEstimate::new(IncEstHeu::with_mode(mode))
                .corroborate(&ds)
                .unwrap();
            assert!(!r.decisions().label(FactId::new(11)).as_bool(), "{mode:?}");
        }
    }

    #[test]
    fn equation9_mode_pins_the_hand_traced_outcome() {
        // Faithful Equation-9 selection on the motivating example: round 1
        // evaluates {r5, r12} (r5's group edges out r9's on spillover by
        // ~0.06 bits — the §2.3 walkthrough, which Table 2 reports,
        // hand-picks {r9, r12} instead), round 2 {r9, r6}, round 3 the
        // rest. Outcome: r6 and r12 false, A = 9/12 = 0.75 — between the
        // walkthrough's 0.83 and TwoEstimate's 0.67. Pinned so any change
        // to the spillover computation is caught deliberately.
        let ds = motivating_example();
        let r = IncEstimate::new(IncEstHeu::with_mode(DeltaHMode::Equation9))
            .corroborate(&ds)
            .unwrap();
        assert_eq!(r.rounds(), 3);
        for (i, expected_false) in [(5, true), (11, true), (3, false), (4, false)] {
            assert_eq!(
                !r.decisions().label(FactId::new(i)).as_bool(),
                expected_false,
                "r{}",
                i + 1
            );
        }
        let m = r.confusion(&ds).unwrap();
        assert_eq!(m.recall(), 1.0);
        assert!((m.accuracy() - 9.0 / 12.0).abs() < 1e-9, "A = {}", m.accuracy());
    }

    #[test]
    fn default_mode_pins_its_motivating_outcome() {
        let ds = motivating_example();
        let r = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
        // r12 must be uncovered; overall accuracy must beat TwoEstimate's
        // 0.67 (the exact set of extra false facts found is pinned by the
        // assertions below).
        assert!(!r.decisions().label(FactId::new(11)).as_bool());
        let m = r.confusion(&ds).unwrap();
        assert!(m.accuracy() > 0.67 + 1e-9, "A = {}", m.accuracy());
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn balanced_rounds_select_from_both_parts() {
        // First selection must contain at least one fact that evaluates
        // false and one that evaluates true, in equal numbers.
        let ds = motivating_example();
        let state = super::super::IncState::new(&ds, Default::default()).unwrap();
        for mode in MODES {
            let sel = IncEstHeu::with_mode(mode).select(&state);
            assert!(!sel.is_empty(), "{mode:?}");
            let labels: Vec<bool> = sel
                .iter()
                .map(|&f| state.fact_probability(f) >= 0.5)
                .collect();
            assert!(labels.iter().any(|&b| b), "{mode:?}");
            assert!(labels.iter().any(|&b| !b), "{mode:?}");
            let t = labels.iter().filter(|&&b| b).count();
            assert_eq!(2 * t, labels.len(), "{mode:?}");
        }
    }

    #[test]
    fn affirmative_only_dataset_short_circuits_to_one_round() {
        let mut b = DatasetBuilder::new();
        let s0 = b.add_source("a");
        let s1 = b.add_source("b");
        for i in 0..6 {
            let f = b.add_fact(format!("f{i}"));
            b.cast(s0, f, Vote::True).unwrap();
            if i % 2 == 0 {
                b.cast(s1, f, Vote::True).unwrap();
            }
        }
        let ds = b.build().unwrap();
        let r = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
        // No negative part ever exists → single mass round, all true.
        assert_eq!(r.rounds(), 1);
        assert!(r.decisions().labels().iter().all(|l| l.as_bool()));
    }

    #[test]
    fn multi_value_cascade_uncovers_solo_backed_false_facts() {
        // The paper's central mechanism (Figure 2(b)): as rounds evaluate
        // facts the bad source supported to false, its trust value sinks
        // below 0.5, and from then on facts backed *only* by it corroborate
        // to false — something no majority vote can do on affirmative-only
        // facts.
        let mut b = DatasetBuilder::new();
        let g1 = b.add_source("good1");
        let g2 = b.add_source("good2");
        let bad = b.add_source("bad");
        for i in 0..8 {
            let f = b.add_fact(format!("conflictA{i}"));
            b.cast(g1, f, Vote::False).unwrap();
            b.cast(g2, f, Vote::False).unwrap();
            b.cast(bad, f, Vote::True).unwrap();
        }
        for i in 0..4 {
            let f = b.add_fact(format!("conflictB{i}"));
            b.cast(g1, f, Vote::False).unwrap();
            b.cast(bad, f, Vote::True).unwrap();
        }
        let solo: Vec<FactId> = (0..10)
            .map(|i| {
                let f = b.add_fact(format!("solo{i}"));
                b.cast(bad, f, Vote::True).unwrap();
                f
            })
            .collect();
        let fine: Vec<FactId> = (0..6)
            .map(|i| {
                let f = b.add_fact(format!("fine{i}"));
                b.cast(g1, f, Vote::True).unwrap();
                b.cast(g2, f, Vote::True).unwrap();
                f
            })
            .collect();
        let ds = b.build().unwrap();
        let r = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();

        // The bad source ends discredited.
        assert!(
            r.trust().trust(bad) < 0.5,
            "bad source trust = {}",
            r.trust().trust(bad)
        );
        // Every conflict fact is false.
        for i in 0..12 {
            assert!(!r.decisions().label(FactId::new(i)).as_bool());
        }
        // The cascade catches solo facts evaluated after the trust dip —
        // Voting can never do this (one T vote, zero F votes always wins).
        let solo_false = solo
            .iter()
            .filter(|&&f| !r.decisions().label(f).as_bool())
            .count();
        assert!(
            solo_false >= 2,
            "at least the late-evaluated solo facts must be false, got {solo_false}"
        );
        use crate::baseline::Voting;
        let voting = Voting.corroborate(&ds).unwrap();
        assert!(solo
            .iter()
            .all(|&f| voting.decisions().label(f).as_bool()));
        // Facts backed by the good sources survive.
        for f in fine {
            assert!(r.decisions().label(f).as_bool());
        }
    }
}
