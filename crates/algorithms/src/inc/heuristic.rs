//! **IncEstHeu** — the paper's entropy-driven selection strategy
//! (Algorithm 2).
//!
//! At each time point the unevaluated facts are grouped by vote signature
//! and split into a *positive part* `P` (Corrob probability strictly above
//! 0.5 under the current trust — these would evaluate true) and a
//! *negative part* `N` (strictly below; §5.1 defines both parts strictly,
//! so groups sitting exactly on the boundary wait for later rounds). The
//! best group of each part is selected and `n = min(size(FG+), size(FG−))`
//! facts are evaluated from both, keeping the update balanced so neither
//! polarity dominates the trust scores.
//!
//! ## Ranking the groups — the ΔH score
//!
//! §5.1 frames selection as *maximising the collective entropy `H(F̄)` of
//! the unknown facts* after the round. Writing `F̄' = F̄ − FG` for the
//! facts remaining after evaluating group `FG`, the objective decomposes
//! as
//!
//! ```text
//! H_{i+1}(F̄') = H_i(F̄) − H_i(FG)                 (the self term)
//!             + Σ_{FG' ∈ F̄'} [H_{i+1}(FG') − H_i(FG')]   (the spillover)
//! ```
//!
//! The paper's Equation 9 writes only the spillover sum. This
//! implementation supports both terms via [`DeltaHMode`]:
//!
//! - [`DeltaHMode::SelfTerm`] (default) ranks by `−H_i(FG)` per fact —
//!   i.e. evaluates the *most confident* group of each part first,
//!   preserving the entropy of the still-uncertain facts. **This is the
//!   variant that reproduces the paper's experimental results**: on the
//!   §6.3.1 synthetic worlds it reaches the reported ~0.9+ accuracy, and
//!   its running time matches the paper's Table 6 (≈1 s on the
//!   36,916-listing dataset).
//! - [`DeltaHMode::Equation9`] is the literal spillover-only Equation 9.
//!   On the synthetic workloads it exhibits a *discrediting cascade*: it
//!   prefers borderline groups (their evaluation keeps spillover entropy
//!   high), mislabels them while source trust is still noisy, drags the
//!   voting sources below 0.5 and collapses (accuracy well below the
//!   baselines). It is kept for the ablation benches. Its spillover sum
//!   used to make it two orders of magnitude slower than the default
//!   mode; the source→group inverted index restricts each candidate's sum
//!   to index-adjacent groups, and the bound-pruned scorer below skips
//!   candidates that provably cannot win. On the 4k-fact synthetic world
//!   (404 groups, ~68k candidate scorings over 242 rounds) this runs the
//!   full Equation 9 mode in ~0.06 s versus ~1.3 s for the pre-index
//!   full-scan scorer — a ~22× speedup with bit-identical selections (see
//!   `docs/PERFORMANCE.md` and `BENCH_incheu.json` for the methodology
//!   and current numbers).
//! - [`DeltaHMode::Full`] sums both terms (the literal collective-entropy
//!   objective); it inherits Equation 9's cascade on adversarial
//!   geometries.
//!
//! Special case (also §5.1): when one part is empty — all remaining facts
//! would evaluate to the same polarity — the strategy evaluates everything
//! that remains in one final round, exactly like the walkthrough's third
//! round.

use std::sync::atomic::Ordering;

use corroborate_core::entropy::binary_entropy;
use corroborate_core::groups::FactGroup;
use corroborate_core::ids::{FactId, SourceId};
use corroborate_core::vote::Vote;
use corroborate_obs::{Observer, SelectionRecord, Span, TierTally};

use super::shard::{lex_better, merge_pick, GroupPick};
use super::{par, IncState, SelectionStrategy, OBS_EMIT};

/// Which terms of the collective-entropy objective rank the fact groups.
/// See the module-level documentation for the full derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaHMode {
    /// Rank by the per-fact self term `−H(p)`: most confident group first.
    /// Default — reproduces the paper's results and running times.
    #[default]
    SelfTerm,
    /// Rank by the literal Equation 9 spillover sum.
    Equation9,
    /// Rank by self term + spillover (the full objective).
    Full,
}

/// The entropy-heuristic selection strategy. See the module-level documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncEstHeu {
    mode: DeltaHMode,
}

impl IncEstHeu {
    /// Strategy with an explicit ΔH mode.
    pub fn with_mode(mode: DeltaHMode) -> Self {
        Self { mode }
    }

    /// The active ΔH mode.
    pub fn mode(&self) -> DeltaHMode {
        self.mode
    }
}

/// Per-candidate scatter of signed trust shifts over the inverted index:
/// one accumulator slot per group plus a touched bitmap. Built by
/// [`walk_shifts`] in one O(Σ deg(affected)) pass and then replayed in
/// ascending group order as many times as the caller needs — the bound
/// pass and the exact pass share a single walk of the posting lists.
struct ShiftWalk {
    /// `Σ_{s ∈ sig(c) ∩ sig(g)} ±Δσ(s)` per group; valid where `touched`.
    acc: Vec<f64>,
    /// Bitmap over group indices marking groups reached by the scatter.
    touched: Vec<u64>,
}

std::thread_local! {
    /// Reused per-thread scatter buffers: scoring runs tens of thousands of
    /// candidate walks per round, and a fresh allocation + memset per walk
    /// costs more than the scatter itself.
    static WALK_SCRATCH: std::cell::RefCell<ShiftWalk> =
        const { std::cell::RefCell::new(ShiftWalk { acc: Vec::new(), touched: Vec::new() }) };
}

/// Scatters the candidate's projected trust shifts `Δσ(s)` into the
/// [`ShiftWalk`]: for every signature source, its signed shift is added to
/// the accumulator of every live group it votes on (postings are compacted
/// to live groups after each round). Per group, sources contribute in
/// signature order — the same order every previous formulation used, so
/// downstream sums are bit-identical.
fn walk_shifts<O: Observer>(state: &IncState<'_, O>, candidate_gi: usize, walk: &mut ShiftWalk) {
    let groups = state.groups();
    let candidate = &groups[candidate_gi];
    let outcome = state.group_probability(candidate_gi) >= 0.5;
    let size = candidate.facts.len() as u32;
    let index = state.source_index();
    walk.reset(groups.len());
    for sv in &candidate.signature {
        let agrees = sv.vote.is_affirmative() == outcome;
        let extra_matches = if agrees { size } else { 0 };
        let shift =
            state.projected_trust(sv.source, extra_matches, size) - state.trust().trust(sv.source);
        for posting in index.groups_of(sv.source) {
            walk.acc[posting.group] += match posting.vote {
                Vote::True => shift,
                Vote::False => -shift,
            };
            walk.touched[posting.group >> 6] |= 1u64 << (posting.group & 63);
        }
    }
}

impl ShiftWalk {
    /// Prepares the buffers for a universe of `n_groups` groups: grows them
    /// if needed and zeroes exactly the slots the previous walk dirtied.
    fn reset(&mut self, n_groups: usize) {
        if self.acc.len() < n_groups {
            self.acc.resize(n_groups, 0.0);
            self.touched.resize(n_groups.div_ceil(64), 0);
        }
        for word in 0..self.touched.len() {
            let mut bits = self.touched[word];
            while bits != 0 {
                self.acc[(word << 6) + bits.trailing_zeros() as usize] = 0.0;
                bits &= bits - 1;
            }
            self.touched[word] = 0;
        }
    }
    /// Calls `f(group, acc)` once per touched group, ascending by group
    /// index (bitmap scan order).
    #[inline]
    fn for_each(&self, mut f: impl FnMut(usize, f64)) {
        for (word, &bits) in self.touched.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let gi = (word << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(gi, self.acc[gi]);
            }
        }
    }
}

/// Computes the spillover sum of Equation 9 for the candidate group
/// `candidate_gi` (a stable index into [`IncState::groups`]).
///
/// The evaluation of the candidate moves the trust of exactly the sources
/// in its signature, and the Corrob score is a *mean* of per-source
/// contributions, so for every other group the new probability is reachable
/// without touching its signature at all:
///
/// ```text
/// p_new(g) = p_old(g) + (Σ_{s ∈ sig(c) ∩ sig(g)} ±Δσ(s)) / |sig(g)|
/// ```
///
/// where `Δσ(s)` is the source's projected trust shift and the sign follows
/// `g`'s vote polarity for `s`. The inner sums come from one
/// [`walk_shifts`] scatter over the affected sources' posting lists —
/// O(Σ deg(s)) — and the entropy delta then costs one `binary_entropy` per
/// touched group, with the old entropy read from the
/// [`IncState::group_entropy`] cache. Compared to the full-scan scorer this
/// replaced (all G groups × an O(|sig_a|·|sig_b|) overlap check × an
/// O(|sig_b|) overlay recompute × two entropy calls), the per-candidate
/// cost drops from O(G·|sig|²) to O(Σ deg(affected) + |touched|).
///
/// Groups sharing no source keep `p_new == p_old` exactly and contribute a
/// hard zero, exactly as in the full-scan version; accumulated deltas agree
/// with the recomputed overlay mean to within ulps (the equivalence suite
/// in `naive_ref` pins this at 1e-12 together with identical selections).
pub(super) fn spillover<O: Observer>(state: &IncState<'_, O>, candidate_gi: usize) -> f64 {
    let groups = state.groups();
    WALK_SCRATCH.with_borrow_mut(|walk| {
        walk_shifts(state, candidate_gi, walk);
        let mut dh = 0.0;
        walk.for_each(|gi, acc| {
            if gi == candidate_gi {
                return;
            }
            let group = &groups[gi];
            if group.facts.is_empty() {
                return;
            }
            let p_new = state.group_probability(gi) + acc / group.signature.len() as f64;
            dh += group.facts.len() as f64 * (binary_entropy(p_new) - state.group_entropy(gi));
        });
        dh
    })
}

/// Minimum of `|H''|` on `[0, 1]` — attained at p = ½: `4/ln 2`.
const GLOBAL_CMIN: f64 = 4.0 / std::f64::consts::LN_2;

/// Everything the per-touched-group hot loops need, packed into one cache
/// line per group (the walk passes are load-bound; scattering these over
/// five parallel arrays costs five cache misses per touched group).
/// Values are copied bit-exactly from the state caches, so sums over them
/// match sums over the originals bit for bit.
#[derive(Clone, Copy, Default)]
struct GroupBound {
    /// `H'(p_g) = log2((1−p)/p)` (±∞ at the boundaries).
    slope: f64,
    /// `1/|sig_g|` (0 for dead/voteless groups).
    inv_len: f64,
    /// `|H''(p_g)|` — the minimum curvature over any probability move
    /// *away* from ½.
    c_away: f64,
    /// Cached Corrob probability [`IncState::group_probability`].
    p: f64,
    /// Cached entropy [`IncState::group_entropy`].
    h: f64,
    /// `|FG|` as f64 (0 for dead groups).
    size: f64,
    /// `|sig_g|` as f64 — the exact pass divides by this, matching
    /// [`spillover`]'s `acc / len` bit for bit.
    len: f64,
}

/// Per-round tables for bound-pruned spillover scoring, built once per
/// `select` and shared by both parts.
struct BoundTables {
    /// Packed per-group hot-loop data.
    gb: Vec<GroupBound>,
    /// Per source: Σ over its live finite-slope postings of
    /// `±size·slope/len` — the reordered linear part of the tangent bound.
    v: Vec<f64>,
    /// Flattened `n_sources × n_sources` matrix: `M[s][s'] = Σ_g
    /// (C_MIN/2)·size_g·(±1)(±1)/len_g²` over live finite-slope groups
    /// voted on by both sources (signs follow the group's polarity for each
    /// source). Expanding `x_cg²` over source pairs turns the summed
    /// curvature term `Σ_g (C_MIN/2)·size_g·x_cg²` into the quadratic form
    /// `Σ_{s,s'∈sig(c)} δ_s·δ_s'·M[s][s']` — second-order accuracy for the
    /// O(|sig|²) prescreen with no posting walk.
    m: Vec<f64>,
    /// Number of sources (row stride of `m`).
    n_sources: usize,
    /// Per size bucket, per source: Σ over the source's live finite-slope
    /// postings of the group's clamp-slack *rate* — multiplied by the
    /// candidate's actual `|δ_s|` at prescreen time (the deficit bound is
    /// linear in each shift), valid for candidates whose group size is
    /// within the bucket.
    sl_rate: Vec<Vec<f64>>,
    /// Per size bucket, per source: Σ of `size_g` over the source's live
    /// *infinite-slope* postings (`p` exactly 0 or 1). Entropy's derivative
    /// is unbounded at the boundary, so no per-shift linear bound exists;
    /// these groups are charged in full.
    sl_cst: Vec<Vec<f64>>,
}

/// Bucket index for a candidate group size: candidates of size `n` use
/// slack tables built for the power-of-two edge `≥ n`, so their projected
/// trust shifts (monotone in the evaluated batch size) stay within the
/// table's assumptions at ≤ 2× pessimism.
#[inline]
fn bucket_of(n: usize) -> usize {
    (usize::BITS - (n.max(1) - 1).leading_zeros()) as usize
}

/// Builds the per-round [`BoundTables`]: O(buckets · (votes + postings))
/// plus one trust projection per source per bucket — thousands of flops,
/// amortised over every candidate scored this round.
fn bound_tables<O: Observer>(state: &IncState<'_, O>) -> BoundTables {
    let groups = state.groups();
    let index = state.source_index();
    let n_sources = index.n_sources();

    let mut gb = vec![GroupBound::default(); groups.len()];
    for (gi, g) in groups.iter().enumerate() {
        if g.facts.is_empty() || g.signature.is_empty() {
            continue;
        }
        let p = state.group_probability(gi);
        gb[gi] = GroupBound {
            slope: ((1.0 - p) / p).log2(),
            inv_len: 1.0 / g.signature.len() as f64,
            c_away: 1.0 / (std::f64::consts::LN_2 * p * (1.0 - p)),
            p,
            h: state.group_entropy(gi),
            size: g.facts.len() as f64,
            len: g.signature.len() as f64,
        };
    }

    let mut v = vec![0.0f64; n_sources];
    for (si, v_s) in v.iter_mut().enumerate() {
        for posting in index.groups_of(SourceId::new(si)) {
            let g = &gb[posting.group];
            if g.size == 0.0 {
                continue;
            }
            if g.slope.is_finite() {
                let w = match posting.vote {
                    Vote::True => 1.0,
                    Vote::False => -1.0,
                };
                *v_s += w * g.size * g.slope * g.inv_len;
            }
        }
    }

    // Pairwise curvature matrix. GLOBAL_CMIN is a valid curvature floor in
    // either direction, so the subtracted quadratic form keeps the
    // prescreen an upper bound regardless of where each move points.
    let mut m = vec![0.0f64; n_sources * n_sources];
    for (gi, g) in groups.iter().enumerate() {
        let b = &gb[gi];
        if b.size == 0.0 || !b.slope.is_finite() {
            continue;
        }
        let w = 0.5 * GLOBAL_CMIN * b.size * b.inv_len * b.inv_len;
        for svi in &g.signature {
            let wi = match svi.vote {
                Vote::True => w,
                Vote::False => -w,
            };
            let row = svi.source.index() * n_sources;
            for svj in &g.signature {
                let wij = match svj.vote {
                    Vote::True => wi,
                    Vote::False => -wi,
                };
                m[row + svj.source.index()] += wij;
            }
        }
    }

    // Slack tables, one per candidate-size bucket. Small candidates shift
    // trust very little, so their slack is near zero and the O(|sig|)
    // bound alone prunes them; only the few large candidates fall through
    // to the walk tiers.
    let nmax = groups.iter().map(|g| g.facts.len()).max().unwrap_or(1).max(1);
    let n_buckets = bucket_of(nmax) + 1;
    let mut sl_rate = Vec::with_capacity(n_buckets);
    let mut sl_cst = Vec::with_capacity(n_buckets);
    for b in 0..n_buckets {
        let edge = (1usize << b).min(nmax) as u32;
        let smax: Vec<f64> = (0..n_sources)
            .map(|si| {
                let s = SourceId::new(si);
                let t = state.trust().trust(s);
                let down = t - state.projected_trust(s, 0, edge);
                let up = state.projected_trust(s, edge, edge) - t;
                down.max(up)
            })
            .collect();
        let mut rate_b = vec![0.0f64; n_sources];
        let mut cst_b = vec![0.0f64; n_sources];
        for (gi, g) in groups.iter().enumerate() {
            if g.facts.is_empty() || g.signature.is_empty() {
                continue;
            }
            let b = &gb[gi];
            if !b.slope.is_finite() {
                // p exactly 0 or 1: no slope; the term is ≤ size·(1 − 0),
                // charged in full to every shared source (a candidate
                // triggers it with any one of them).
                for sv in &g.signature {
                    cst_b[sv.source.index()] += b.size;
                }
                continue;
            }
            // Clamp slack, split subadditively over the group's sources.
            // For a candidate sharing source set I with actual shifts
            // `δ_s`, the clamp arm `−H` can exceed the prescreen's
            // quadratic arm by at most `size·(A − H)₊` where
            // `A = u·Σ_{s∈I} |δ_s|` and `u = (|slope| +
            // (C_MIN/2)·x_max)/len` (the curvature inflation covers the
            // subtracted quadratic form at the worst achievable move).
            // With `U = u·Σ_{s∈sig} smax_s ≥ A`, `(A − H)₊ ≤ (1 − H/U)·A`,
            // so charging source `s` the rate `size·u·(1 − H/U)` *per unit
            // of actual shift* covers the deficit; the prescreen multiplies
            // by the candidate's true `|δ_s|`, far below the bucket's
            // worst case in late rounds. Whenever `U ≤ H` — the group's
            // whole worst-case move stays within its entropy — every rate
            // is zero, which is what makes the O(|sig|²) prescreen bite
            // once trust shifts shrink.
            let smax_sum: f64 = g.signature.iter().map(|sv| smax[sv.source.index()]).sum();
            let x_max = smax_sum * b.inv_len;
            let u = b.inv_len * (b.slope.abs() + 0.5 * GLOBAL_CMIN * x_max);
            let total = smax_sum * u;
            if total <= b.h {
                continue;
            }
            let rate = (1.0 - b.h / total) * b.size * u;
            for sv in &g.signature {
                rate_b[sv.source.index()] += rate;
            }
        }
        sl_rate.push(rate_b);
        sl_cst.push(cst_b);
    }

    BoundTables { gb, v, m, n_sources, sl_rate, sl_cst }
}

/// Upper bound on one touched group's spillover term, without evaluating
/// any entropy.
///
/// Binary entropy is concave, so whenever `p + x` stays in `[0, 1]`,
/// Taylor's remainder gives `H(p + x) − H(p) ≤ H'(p)·x − c·x²/2` for any
/// `c ≤ min |H''|` over the interval: `|H''|` grows away from ½, so a move
/// away from ½ takes its minimum at `p` itself (precomputed in `c_away`),
/// and a move toward ½ falls back to the global [`GLOBAL_CMIN`]. When
/// `p + x` escapes `[0, 1]`, `binary_entropy` clamps and the change is
/// exactly `−H(p)`; `max` of the two covers both cases. ±∞ slope at the
/// boundaries falls back to the global `H ≤ 1` bound.
#[inline]
fn ub_term(g: &GroupBound, acc: f64) -> f64 {
    if !g.slope.is_finite() {
        return g.size;
    }
    let x = acc * g.inv_len;
    let c = if x * (0.5 - g.p) > 0.0 { GLOBAL_CMIN } else { g.c_away };
    g.size * (g.slope * x - 0.5 * c * x * x).max(-g.h)
}

/// [`spillover`] under a pruning cut, sharing one [`walk_shifts`] scatter
/// between two replay passes:
///
/// 1. **Bound pass** — sums the curvature-tightened tangent bound
///    ([`ub_term`]) with no entropy evaluation. If the total stays under
///    `cut`, the exact score provably cannot reach the bar and the
///    candidate returns NaN without ever computing an entropy.
/// 2. **Exact pass with early abandonment** — accumulates the exact sum
///    alongside the *remaining* upper bound (the bound total minus the
///    [`ub_term`]s already passed; both passes replay the identical terms
///    in the identical order, so the subtraction is float-exact). As soon
///    as `partial + remaining < cut` the final score provably cannot reach
///    `cut` and the candidate returns NaN.
///
/// The exact accumulation is the same operations in the same order as
/// [`spillover`], so a completing candidate returns the bit-identical
/// score.
///
/// `tally` records which tier resolved the candidate (walk-bound kill,
/// early abandon, or exact completion); it is touched only when the
/// observer is enabled.
fn spillover_pruned<O: Observer>(
    state: &IncState<'_, O>,
    candidate_gi: usize,
    t: &BoundTables,
    cut: f64,
    tally: &TierTally,
) -> f64 {
    WALK_SCRATCH.with_borrow_mut(|walk| {
        walk_shifts(state, candidate_gi, walk);
        let mut ub = 0.0;
        walk.for_each(|gi, acc| {
            let g = &t.gb[gi];
            if gi == candidate_gi || g.size == 0.0 {
                return;
            }
            ub += ub_term(g, acc);
        });
        if ub < cut {
            if O::ENABLED && OBS_EMIT {
                tally.walk_bound.fetch_add(1, Ordering::Relaxed);
            }
            return f64::NAN;
        }
        let mut dh = 0.0;
        let mut remaining = ub;
        let mut abandoned = false;
        walk.for_each(|gi, acc| {
            let g = &t.gb[gi];
            if abandoned || gi == candidate_gi || g.size == 0.0 {
                return;
            }
            remaining -= ub_term(g, acc);
            let p_new = g.p + acc / g.len;
            dh += g.size * (binary_entropy(p_new) - g.h);
            if dh + remaining < cut {
                abandoned = true;
            }
        });
        if O::ENABLED && OBS_EMIT {
            let tier = if abandoned { &tally.early_abandon } else { &tally.exact };
            tier.fetch_add(1, Ordering::Relaxed);
        }
        if abandoned {
            f64::NAN
        } else {
            dh
        }
    })
}

/// O(|sig|²) posting-walk-free prescreen for one candidate.
///
/// Summing the curvature-tightened tangent bound
/// `Σ_g size_g·(slope_g·x_cg − (C_MIN/2)·x_cg²)` over touched groups
/// reorders over the *sources* of the candidate's signature:
/// `x_cg = (Σ_{s ∈ sig(c) ∩ sig(g)} ±δ_s)/len_g`, so the linear part
/// collapses to `Σ_{s ∈ sig(c)} δ_s·v[s]` and the quadratic part to the
/// form `Σ_{s,s' ∈ sig(c)} δ_s·δ_s'·M[s][s']`, both with per-round tables —
/// no posting walk per candidate. The reordered sums include the
/// candidate's own group (it posts on its own sources); both its parts are
/// subtracted back exactly.
///
/// Returns `(rank, bound)`: `rank` is the slack-free second-order estimate —
/// a close approximation of the true score, used to order candidates and
/// pick the bar — and `bound` adds the candidate's size-bucketed clamp
/// slack, making it a valid upper bound on [`spillover`] fit for pruning.
fn linear_prescreen<O: Observer>(
    state: &IncState<'_, O>,
    t: &BoundTables,
    candidate_gi: usize,
) -> (f64, f64) {
    let candidate = &state.groups()[candidate_gi];
    let outcome = state.group_probability(candidate_gi) >= 0.5;
    let size = candidate.facts.len() as u32;
    let bucket = bucket_of(candidate.facts.len());
    let (sl_rate, sl_cst) = (&t.sl_rate[bucket], &t.sl_cst[bucket]);
    let mut deltas = Vec::with_capacity(candidate.signature.len());
    let mut lin = 0.0;
    let mut slack = 0.0;
    let mut own_num = 0.0;
    for sv in &candidate.signature {
        let agrees = sv.vote.is_affirmative() == outcome;
        let extra_matches = if agrees { size } else { 0 };
        let delta =
            state.projected_trust(sv.source, extra_matches, size) - state.trust().trust(sv.source);
        let si = sv.source.index();
        deltas.push((si, delta));
        lin += delta * t.v[si];
        slack += sl_rate[si] * delta.abs() + sl_cst[si];
        own_num += match sv.vote {
            Vote::True => delta,
            Vote::False => -delta,
        };
    }
    // Quadratic form over the signature's source pairs, minus the
    // candidate's own group's exact contribution to both parts.
    let mut quad = 0.0;
    for &(si, di) in &deltas {
        let row = &t.m[si * t.n_sources..(si + 1) * t.n_sources];
        for &(sj, dj) in &deltas {
            quad += di * dj * row[sj];
        }
    }
    let g = &t.gb[candidate_gi];
    if g.slope.is_finite() {
        lin -= g.size * g.slope * own_num * g.inv_len;
        quad -= 0.5 * GLOBAL_CMIN * g.size * g.inv_len * g.inv_len * own_num * own_num;
    }
    let est = lin - quad;
    (est, est + slack)
}

/// Block size for the adaptive-bar loop: small enough that the bar rises
/// quickly — each block's best exact score becomes the next block's cut,
/// and when the linear ranking misorders a part the bar still converges
/// within a few blocks — at the cost of [`par::map_scores`] batches below
/// its parallel threshold (small blocks run sequentially whatever the
/// thread count; the walk tiers inside a block are where the time goes,
/// and pruning more than pays for the lost fan-out).
const PRUNE_BLOCK: usize = 8;

/// Scores one part under a spillover-bearing mode with adaptive-bar bound
/// pruning.
///
/// Every candidate first gets the O(|sig|) [`linear_prescreen`]; candidates
/// are then processed in descending order of the slack-free estimate, in
/// blocks of [`PRUNE_BLOCK`]. Within a block each candidate passes through
/// tiers of increasingly tight (and expensive) scoring against the bar
/// frozen at block entry: linear bound, then the shared-walk bound and
/// early-abandoning exact passes of [`spillover_pruned`] — dropping out at
/// the first tier that proves it stays under the bar. After each block the bar
/// rises to the best exact score seen so far, so later blocks prune against
/// an ever-tighter cut even when the linear ranking is inaccurate (early
/// rounds, where large trust deltas overwhelm the tangent approximation).
///
/// A pruned candidate satisfies `exact ≤ bound < cut < bar ≤ max(exact
/// scores)`, so it can neither win nor tie the argmax — the selection
/// (tie-breaks included) is provably identical to scoring every candidate,
/// whatever order the bar rose in; pruning only skips work for candidates
/// that cannot matter. Pruned entries are returned as NaN, which
/// [`best_of`] skips.
fn scores_pruned<O: Observer>(
    state: &IncState<'_, O>,
    part: &[usize],
    mode: DeltaHMode,
    t: &BoundTables,
    tally: &TierTally,
) -> Vec<f64> {
    let groups = state.groups();
    let self_term = |gi: usize| -> f64 {
        match mode {
            DeltaHMode::Full => -(groups[gi].facts.len() as f64) * state.group_entropy(gi),
            _ => 0.0,
        }
    };

    let mut ranks = Vec::with_capacity(part.len());
    let mut lins = Vec::with_capacity(part.len());
    for &gi in part {
        let (lin, ub) = linear_prescreen(state, t, gi);
        let st = self_term(gi);
        ranks.push(lin + st);
        lins.push(ub + st);
    }
    let mut order: Vec<usize> = (0..part.len()).collect();
    order.sort_unstable_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));

    // Seed the bar with the top-ranked candidate's exact score.
    let m = order[0];
    let mut bar = spillover(state, part[m]) + self_term(part[m]);
    if O::ENABLED && OBS_EMIT {
        tally.exact.fetch_add(1, Ordering::Relaxed);
    }
    // Safety margin: the bounds dominate the exact score in the reals, but
    // all are rounded sums — never let float noise prune an exact tie.
    let margin = |bar: f64| bar - 1e-9 * (1.0 + bar.abs());
    let mut cut = margin(bar);

    let mut scores = vec![f64::NAN; part.len()];
    scores[m] = bar;
    for block in order[1..].chunks(PRUNE_BLOCK) {
        let block_scores = par::map_scores(block, state.threads(), |k| {
            if lins[k] < cut {
                if O::ENABLED && OBS_EMIT {
                    tally.prescreen.fetch_add(1, Ordering::Relaxed);
                }
                return f64::NAN;
            }
            let gi = part[k];
            let st = self_term(gi);
            spillover_pruned(state, gi, t, cut - st, tally) + st
        });
        for (&k, &s) in block.iter().zip(&block_scores) {
            scores[k] = s;
            if s > bar {
                bar = s;
                cut = margin(bar);
            }
        }
    }
    scores
}

/// Argmax over one part with the documented tie-breaks; `scores[k]` is the
/// exact ΔH score of `part[k]`, or NaN for candidates [`scores_pruned`]
/// proved unable to win or tie. Returns the winning pick (group index plus
/// its exact projected ΔH score).
///
/// Exact score ties are systematic at t_0 (every source has the same
/// default trust, so e.g. every T-only signature scores identically).
/// [`lex_better`] breaks them by signature length — more votes on a fact
/// means stronger corroboration, so its projected label is the safest to
/// commit and the per-source credit is spread over co-voting sources
/// instead of anointing one arbitrary source — then larger groups, then
/// canonical order (ascending scan, strict comparison: first seen wins
/// full ties). The sharded self-term path reproduces exactly this order
/// via the per-shard scan + fixed-order merge.
fn best_of(groups: &[FactGroup], part: &[usize], scores: &[f64]) -> GroupPick {
    let mut best: Option<GroupPick> = None;
    for (&i, &s) in part.iter().zip(scores) {
        if s.is_nan() {
            continue;
        }
        let cand = GroupPick {
            gi: i,
            score: s,
            sig_len: groups[i].signature.len(),
            size: groups[i].facts.len(),
        };
        if best.is_none_or(|b| lex_better(&cand, &b)) {
            best = Some(cand);
        }
    }
    // All-NaN cannot happen (`scores_pruned` always seeds one exact
    // score), but degrade to the part's first group rather than panic.
    best.unwrap_or(GroupPick {
        gi: part[0],
        score: f64::NEG_INFINITY,
        sig_len: groups[part[0]].signature.len(),
        size: groups[part[0]].facts.len(),
    })
}

impl SelectionStrategy for IncEstHeu {
    fn name(&self) -> &str {
        match self.mode {
            DeltaHMode::SelfTerm => "IncEstHeu",
            DeltaHMode::Equation9 => "IncEstHeu(eq9)",
            DeltaHMode::Full => "IncEstHeu(full)",
        }
    }

    fn select<O: Observer>(&self, state: &IncState<'_, O>) -> Vec<FactId> {
        let groups = state.groups();
        let mode = self.mode;
        let tally = TierTally::new();

        let (best_pos, best_neg, candidates) = if mode == DeltaHMode::SelfTerm {
            // Sharded scan: each shard walks its own (ascending) member
            // list, partitions strictly (§5.1: positive above 0.5,
            // negative below — boundary groups wait) and keeps its local
            // lex-best group per polarity; self-term scores `−H(p)` per
            // fact are O(1) cache reads. The merge then folds the shard
            // winners in fixed shard order with positional tie-breaks, so
            // the global argmax is bit-identical to one sequential scan of
            // the whole canonical group list.
            let scans = state.shard_scans();
            crate::traced(state.observer(), Span::ShardMerge, scans.len() as u64, || {
                let mut pos = None;
                let mut neg = None;
                let mut candidates = 0u64;
                for scan in &scans {
                    merge_pick(&mut pos, scan.pos);
                    merge_pick(&mut neg, scan.neg);
                    candidates += scan.candidates;
                }
                (pos, neg, candidates)
            })
        } else {
            // Spillover-bearing modes: strict §5.1 partition of the live
            // groups (probabilities come from the per-group cache —
            // nothing is recomputed here), then the bound-pruned scorer
            // over each part. `par::map_scores` fills score vectors
            // positionally, so the argmax sees the same scores in the same
            // order whatever the thread count.
            let mut positive = Vec::new();
            let mut negative = Vec::new();
            for (gi, g) in groups.iter().enumerate() {
                if g.facts.is_empty() {
                    continue;
                }
                let p = state.group_probability(gi);
                if p > 0.5 {
                    positive.push(gi);
                } else if p < 0.5 {
                    negative.push(gi);
                }
            }
            if positive.is_empty() || negative.is_empty() {
                (None, None, 0)
            } else {
                let tables = bound_tables(state);
                let pos_scores = scores_pruned(state, &positive, mode, &tables, &tally);
                let neg_scores = scores_pruned(state, &negative, mode, &tables, &tally);
                (
                    Some(best_of(groups, &positive, &pos_scores)),
                    Some(best_of(groups, &negative, &neg_scores)),
                    (positive.len() + negative.len()) as u64,
                )
            }
        };

        let (Some(pos), Some(neg)) = (best_pos, best_neg) else {
            // §5.1 terminal case: all remaining facts share one polarity —
            // evaluate them all (empty selection = engine evaluates rest).
            return Vec::new();
        };
        let fg_pos = &groups[pos.gi];
        let fg_neg = &groups[neg.gi];

        if O::ENABLED && OBS_EMIT {
            if mode == DeltaHMode::SelfTerm {
                // Self-term scores are exact O(1) cache reads: every
                // candidate counts as exact-scored, no pruning tiers exist.
                tally.exact.fetch_add(candidates, Ordering::Relaxed);
            }
            let obs = state.observer();
            tally.flush_to(obs);
            let (prescreen, walk_bound, early_abandon, exact) = tally.snapshot();
            obs.selection(&SelectionRecord {
                positive_group: Some(pos.gi),
                negative_group: Some(neg.gi),
                projected_dh_pos: Some(pos.score),
                projected_dh_neg: Some(neg.score),
                candidates,
                prescreen_killed: prescreen,
                walk_bound_killed: walk_bound,
                early_abandon_killed: early_abandon,
                exact_scored: exact,
            });
        }

        // Balanced pick: n facts from each, n = size of the smaller group.
        let n = fg_pos.facts.len().min(fg_neg.facts.len());
        let mut selection = Vec::with_capacity(2 * n);
        selection.extend_from_slice(&fg_pos.facts[..n]);
        selection.extend_from_slice(&fg_neg.facts[..n]);
        selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inc::IncEstimate;
    use corroborate_core::prelude::*;
    use corroborate_datagen::motivating::motivating_example;

    const MODES: [DeltaHMode; 3] = [DeltaHMode::SelfTerm, DeltaHMode::Equation9, DeltaHMode::Full];

    #[test]
    fn names_reflect_modes() {
        assert_eq!(IncEstHeu::default().name(), "IncEstHeu");
        assert_eq!(IncEstHeu::with_mode(DeltaHMode::Equation9).name(), "IncEstHeu(eq9)");
        assert_eq!(IncEstHeu::with_mode(DeltaHMode::Full).name(), "IncEstHeu(full)");
        assert_eq!(IncEstHeu::default().mode(), DeltaHMode::SelfTerm);
    }

    #[test]
    fn terminates_and_covers_every_fact_in_all_modes() {
        let ds = motivating_example();
        for mode in MODES {
            let r = IncEstimate::new(IncEstHeu::with_mode(mode)).corroborate(&ds).unwrap();
            assert_eq!(r.probabilities().len(), ds.n_facts());
            assert!(r.rounds() >= 2, "{mode:?} must be genuinely incremental");
        }
    }

    #[test]
    fn beats_two_estimates_on_the_motivating_example() {
        use crate::galland::TwoEstimates;
        let ds = motivating_example();
        let two =
            TwoEstimates::default().corroborate(&ds).unwrap().confusion(&ds).unwrap().accuracy();
        for mode in MODES {
            let heu = IncEstimate::new(IncEstHeu::with_mode(mode))
                .corroborate(&ds)
                .unwrap()
                .confusion(&ds)
                .unwrap()
                .accuracy();
            assert!(heu > two, "{mode:?}: IncEstHeu accuracy {heu} must beat TwoEstimate {two}");
        }
    }

    #[test]
    fn identifies_r12_as_false_in_all_modes() {
        let ds = motivating_example();
        for mode in MODES {
            let r = IncEstimate::new(IncEstHeu::with_mode(mode)).corroborate(&ds).unwrap();
            assert!(!r.decisions().label(FactId::new(11)).as_bool(), "{mode:?}");
        }
    }

    #[test]
    fn equation9_mode_pins_the_hand_traced_outcome() {
        // Faithful Equation-9 selection on the motivating example: round 1
        // evaluates {r5, r12} (r5's group edges out r9's on spillover by
        // ~0.06 bits — the §2.3 walkthrough, which Table 2 reports,
        // hand-picks {r9, r12} instead), round 2 {r9, r6}, round 3 the
        // rest. Outcome: r6 and r12 false, A = 9/12 = 0.75 — between the
        // walkthrough's 0.83 and TwoEstimate's 0.67. Pinned so any change
        // to the spillover computation is caught deliberately.
        let ds = motivating_example();
        let r =
            IncEstimate::new(IncEstHeu::with_mode(DeltaHMode::Equation9)).corroborate(&ds).unwrap();
        assert_eq!(r.rounds(), 3);
        for (i, expected_false) in [(5, true), (11, true), (3, false), (4, false)] {
            assert_eq!(
                !r.decisions().label(FactId::new(i)).as_bool(),
                expected_false,
                "r{}",
                i + 1
            );
        }
        let m = r.confusion(&ds).unwrap();
        assert_eq!(m.recall(), 1.0);
        assert!((m.accuracy() - 9.0 / 12.0).abs() < 1e-9, "A = {}", m.accuracy());
    }

    #[test]
    fn default_mode_pins_its_motivating_outcome() {
        let ds = motivating_example();
        let r = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
        // r12 must be uncovered; overall accuracy must beat TwoEstimate's
        // 0.67 (the exact set of extra false facts found is pinned by the
        // assertions below).
        assert!(!r.decisions().label(FactId::new(11)).as_bool());
        let m = r.confusion(&ds).unwrap();
        assert!(m.accuracy() > 0.67 + 1e-9, "A = {}", m.accuracy());
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn balanced_rounds_select_from_both_parts() {
        // First selection must contain at least one fact that evaluates
        // false and one that evaluates true, in equal numbers.
        let ds = motivating_example();
        let state = super::super::IncState::new(&ds, Default::default()).unwrap();
        for mode in MODES {
            let sel = IncEstHeu::with_mode(mode).select(&state);
            assert!(!sel.is_empty(), "{mode:?}");
            let labels: Vec<bool> = sel.iter().map(|&f| state.fact_probability(f) >= 0.5).collect();
            assert!(labels.iter().any(|&b| b), "{mode:?}");
            assert!(labels.iter().any(|&b| !b), "{mode:?}");
            let t = labels.iter().filter(|&&b| b).count();
            assert_eq!(2 * t, labels.len(), "{mode:?}");
        }
    }

    #[test]
    fn affirmative_only_dataset_short_circuits_to_one_round() {
        let mut b = DatasetBuilder::new();
        let s0 = b.add_source("a");
        let s1 = b.add_source("b");
        for i in 0..6 {
            let f = b.add_fact(format!("f{i}"));
            b.cast(s0, f, Vote::True).unwrap();
            if i % 2 == 0 {
                b.cast(s1, f, Vote::True).unwrap();
            }
        }
        let ds = b.build().unwrap();
        let r = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
        // No negative part ever exists → single mass round, all true.
        assert_eq!(r.rounds(), 1);
        assert!(r.decisions().labels().iter().all(|l| l.as_bool()));
    }

    #[test]
    fn multi_value_cascade_uncovers_solo_backed_false_facts() {
        // The paper's central mechanism (Figure 2(b)): as rounds evaluate
        // facts the bad source supported to false, its trust value sinks
        // below 0.5, and from then on facts backed *only* by it corroborate
        // to false — something no majority vote can do on affirmative-only
        // facts.
        let mut b = DatasetBuilder::new();
        let g1 = b.add_source("good1");
        let g2 = b.add_source("good2");
        let bad = b.add_source("bad");
        for i in 0..8 {
            let f = b.add_fact(format!("conflictA{i}"));
            b.cast(g1, f, Vote::False).unwrap();
            b.cast(g2, f, Vote::False).unwrap();
            b.cast(bad, f, Vote::True).unwrap();
        }
        for i in 0..4 {
            let f = b.add_fact(format!("conflictB{i}"));
            b.cast(g1, f, Vote::False).unwrap();
            b.cast(bad, f, Vote::True).unwrap();
        }
        let solo: Vec<FactId> = (0..10)
            .map(|i| {
                let f = b.add_fact(format!("solo{i}"));
                b.cast(bad, f, Vote::True).unwrap();
                f
            })
            .collect();
        let fine: Vec<FactId> = (0..6)
            .map(|i| {
                let f = b.add_fact(format!("fine{i}"));
                b.cast(g1, f, Vote::True).unwrap();
                b.cast(g2, f, Vote::True).unwrap();
                f
            })
            .collect();
        let ds = b.build().unwrap();
        let r = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();

        // The bad source ends discredited.
        assert!(r.trust().trust(bad) < 0.5, "bad source trust = {}", r.trust().trust(bad));
        // Every conflict fact is false.
        for i in 0..12 {
            assert!(!r.decisions().label(FactId::new(i)).as_bool());
        }
        // The cascade catches solo facts evaluated after the trust dip —
        // Voting can never do this (one T vote, zero F votes always wins).
        let solo_false = solo.iter().filter(|&&f| !r.decisions().label(f).as_bool()).count();
        assert!(
            solo_false >= 2,
            "at least the late-evaluated solo facts must be false, got {solo_false}"
        );
        use crate::baseline::Voting;
        let voting = Voting.corroborate(&ds).unwrap();
        assert!(solo.iter().all(|&f| voting.decisions().label(f).as_bool()));
        // Facts backed by the good sources survive.
        for f in fine {
            assert!(r.decisions().label(f).as_bool());
        }
    }
}
