//! Per-shard engine state: the partitioned probability/entropy caches and
//! the deterministic scan/merge primitives behind the parallel IncEstimate
//! core.
//!
//! The canonical group list is partitioned once per run by
//! [`ShardPlan`] (stable signature hash — see `corroborate_core::shard`).
//! Each shard owns a [`ShardSlab`]: the slice of the Corrob-probability and
//! entropy caches for its groups plus its own dirty list, so a cache
//! refresh is an embarrassingly parallel loop over slabs — no shared
//! mutable state, no locks, no `unsafe` — scheduled statically over scoped
//! threads ([`super::par`]).
//!
//! ## Why results are bit-identical to the sequential engine
//!
//! - *Refresh*: each dirty group's probability/entropy is recomputed from
//!   the same `(signature, trust, prior)` inputs by the same kernel,
//!   written to a slot only its own shard touches. Recomputation order
//!   across groups is irrelevant — entries are independent.
//! - *Selection*: each shard scans its members in ascending canonical
//!   order and keeps the lexicographic best per polarity
//!   ([`lex_better`]: score, then signature length, then group size, with
//!   the earliest group winning full ties). The per-round reduction
//!   ([`merge_pick`]) folds shard winners in fixed shard order and breaks
//!   full ties positionally on the canonical group index — exactly the
//!   winner the sequential ascending scan would have kept.

use corroborate_core::entropy::binary_entropy;
use corroborate_core::groups::FactGroup;
use corroborate_core::scoring::corrob_probability_or;
use corroborate_core::shard::ShardPlan;
use corroborate_core::trust::TrustSnapshot;

use super::par;

/// Shard count used when [`ShardConfig::shards`] is 0 (auto). A fixed
/// constant rather than a hardware probe: the effective shard count feeds
/// deterministic, golden-gated telemetry (shard tasks, imbalance), so it
/// must not vary across machines. 16 shards keep every slab comfortably
/// busy on the thread counts the benches sweep (1–8 and "max") while the
/// static scheduler assigns multiple slabs per worker beyond that.
pub const DEFAULT_SHARDS: usize = 16;

/// Below this many total dirty groups a refresh runs on the calling
/// thread: recomputing a group costs a few hundred nanoseconds, so a
/// small dirty set cannot amortise even one thread spawn.
const MIN_PARALLEL_REFRESH_GROUPS: usize = 256;

/// Below this many total groups the selection scan runs on the calling
/// thread — the scan is a cache read plus a comparison per group.
const MIN_PARALLEL_SCAN_GROUPS: usize = 16_384;

/// Shard/thread configuration of the engine core. The default (`0`/`0`,
/// i.e. auto) is the *parallel* configuration: sharded state over
/// [`DEFAULT_SHARDS`] shards, worker count from the OS. Results are
/// bit-identical for every setting; only wall-clock changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardConfig {
    /// Number of shards (0 = auto → [`DEFAULT_SHARDS`]). The effective
    /// count is additionally clamped to the dataset's group count.
    pub shards: usize,
    /// Worker threads for refresh/scan fan-out (0 = auto → OS parallelism;
    /// 1 = fully sequential).
    pub threads: usize,
}

impl ShardConfig {
    /// Explicitly sequential: one shard, one thread.
    pub fn sequential() -> Self {
        Self { shards: 1, threads: 1 }
    }

    /// The shard count with auto resolved (before group-count clamping).
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            DEFAULT_SHARDS
        } else {
            self.shards
        }
    }

    /// The worker count with auto resolved against the OS.
    pub fn resolved_threads(&self) -> usize {
        par::resolve_threads(self.threads)
    }
}

/// One shard's slice of the engine caches, indexed by slot (position in
/// the shard's member list).
#[derive(Debug, Default)]
struct ShardSlab {
    /// Cached Corrob probability per owned group.
    probs: Vec<f64>,
    /// Cached `binary_entropy(probs[slot])`.
    entropies: Vec<f64>,
    /// Scratch dirty flags (all false between refreshes).
    dirty_flags: Vec<bool>,
    /// Slots awaiting recomputation.
    dirty: Vec<u32>,
}

impl ShardSlab {
    /// Recomputes every dirty slot from `(signature, trust, prior)` and
    /// clears the dirty list. Runs on whatever worker owns the slab.
    fn refresh(
        &mut self,
        members: &[usize],
        groups: &[FactGroup],
        trust: &TrustSnapshot,
        prior: f64,
    ) {
        for k in 0..self.dirty.len() {
            let slot = self.dirty[k] as usize;
            self.dirty_flags[slot] = false;
            let gi = members[slot];
            let p = corrob_probability_or(&groups[gi].signature, trust, prior);
            self.probs[slot] = p;
            self.entropies[slot] = binary_entropy(p);
        }
        self.dirty.clear();
    }
}

/// What one refresh did, for telemetry.
pub(super) struct RefreshStats {
    /// Group entries recomputed (total dirty across shards).
    pub groups_recomputed: usize,
    /// Shards that had at least one dirty group.
    pub shard_tasks: usize,
}

/// One shard's polarity winners from a selection scan.
#[derive(Debug, Default, Clone, Copy)]
pub(super) struct ShardScan {
    /// Best positive-part group of the shard (`p > 0.5`), if any.
    pub pos: Option<GroupPick>,
    /// Best negative-part group of the shard (`p < 0.5`), if any.
    pub neg: Option<GroupPick>,
    /// Live groups the shard classified into either part.
    pub candidates: u64,
}

/// A candidate group with everything the merge tie-breaks on.
#[derive(Debug, Clone, Copy)]
pub(super) struct GroupPick {
    /// Canonical group index — the positional tie-break of the reduction.
    pub gi: usize,
    /// Exact ΔH score.
    pub score: f64,
    /// `|sig(FG)|` (first tie-break).
    pub sig_len: usize,
    /// `|FG|` (second tie-break).
    pub size: usize,
}

/// The strict "better than" order of the ΔH argmax: score, then signature
/// length, then group size — shared by the sequential scan, the per-shard
/// scan, and the cross-shard merge so the tie-break rule has exactly one
/// definition.
#[inline]
pub(super) fn lex_better(c: &GroupPick, b: &GroupPick) -> bool {
    c.score > b.score
        || (c.score == b.score
            && (c.sig_len > b.sig_len || (c.sig_len == b.sig_len && c.size > b.size)))
}

/// Folds one shard's winner into the running best. Fixed fold order plus
/// the positional tie-break (lower canonical group index on a full tuple
/// tie) reproduces the sequential ascending-index scan: the winner is the
/// earliest canonical group among the lexicographic maxima, whatever
/// shard it lives in.
#[inline]
pub(super) fn merge_pick(best: &mut Option<GroupPick>, cand: Option<GroupPick>) {
    let Some(c) = cand else { return };
    match best {
        None => *best = Some(c),
        Some(b) => {
            let full_tie = c.score == b.score && c.sig_len == b.sig_len && c.size == b.size;
            if lex_better(&c, b) || (full_tie && c.gi < b.gi) {
                *best = Some(c);
            }
        }
    }
}

/// The partitioned probability/entropy caches of an IncEstimate run.
#[derive(Debug)]
pub(super) struct ShardCaches {
    plan: ShardPlan,
    slabs: Vec<ShardSlab>,
}

impl ShardCaches {
    /// Builds the plan and seeds every slab from the initial trust.
    pub fn build(groups: &[FactGroup], trust: &TrustSnapshot, prior: f64, n_shards: usize) -> Self {
        let plan = ShardPlan::build(groups, n_shards);
        let slabs = (0..plan.n_shards())
            .map(|s| {
                let members = plan.members(s);
                let probs: Vec<f64> = members
                    .iter()
                    .map(|&gi| corrob_probability_or(&groups[gi].signature, trust, prior))
                    .collect();
                let entropies = probs.iter().map(|&p| binary_entropy(p)).collect();
                ShardSlab {
                    probs,
                    entropies,
                    dirty_flags: vec![false; members.len()],
                    dirty: Vec::new(),
                }
            })
            .collect();
        Self { plan, slabs }
    }

    /// The shard partition.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Effective shard count.
    pub fn n_shards(&self) -> usize {
        self.slabs.len()
    }

    /// Cached Corrob probability of group `gi`.
    #[inline]
    pub fn probability(&self, gi: usize) -> f64 {
        let l = self.plan.loc(gi);
        self.slabs[l.shard as usize].probs[l.slot as usize]
    }

    /// Cached binary entropy of group `gi`.
    #[inline]
    pub fn entropy(&self, gi: usize) -> f64 {
        let l = self.plan.loc(gi);
        self.slabs[l.shard as usize].entropies[l.slot as usize]
    }

    /// Marks group `gi` for recomputation on its owning shard.
    #[inline]
    pub fn mark_dirty(&mut self, gi: usize) {
        let l = self.plan.loc(gi);
        let slab = &mut self.slabs[l.shard as usize];
        let slot = l.slot as usize;
        if !slab.dirty_flags[slot] {
            slab.dirty_flags[slot] = true;
            slab.dirty.push(l.slot);
        }
    }

    /// Recomputes every dirty group, fanning shards out over up to
    /// `threads` workers (static contiguous assignment). Returns refresh
    /// telemetry; thread count never changes a single cache bit.
    pub fn refresh(
        &mut self,
        groups: &[FactGroup],
        trust: &TrustSnapshot,
        prior: f64,
        threads: usize,
    ) -> RefreshStats {
        let groups_recomputed: usize = self.slabs.iter().map(|s| s.dirty.len()).sum();
        if groups_recomputed == 0 {
            return RefreshStats { groups_recomputed: 0, shard_tasks: 0 };
        }
        let shard_tasks = self.slabs.iter().filter(|s| !s.dirty.is_empty()).count();
        let threads = if groups_recomputed < MIN_PARALLEL_REFRESH_GROUPS { 1 } else { threads };
        let plan = &self.plan;
        for_each_slab(&mut self.slabs, threads, |shard, slab| {
            if !slab.dirty.is_empty() {
                slab.refresh(plan.members(shard), groups, trust, prior);
            }
        });
        RefreshStats { groups_recomputed, shard_tasks }
    }

    /// Scans every shard for its polarity winners (the ΔH self-term
    /// argmax inputs), fanning out over up to `threads` workers. The
    /// returned vector is in shard order, ready for the deterministic
    /// merge fold.
    pub fn polarity_scans(&self, groups: &[FactGroup], threads: usize) -> Vec<ShardScan> {
        let threads = if self.plan.n_groups() < MIN_PARALLEL_SCAN_GROUPS { 1 } else { threads };
        par::map_indexed(self.n_shards(), threads, |s| self.scan_shard(s, groups))
    }

    /// Sequential scan of one shard, ascending member order.
    fn scan_shard(&self, shard: usize, groups: &[FactGroup]) -> ShardScan {
        let slab = &self.slabs[shard];
        let mut scan = ShardScan::default();
        for (slot, &gi) in self.plan.members(shard).iter().enumerate() {
            let g = &groups[gi];
            if g.facts.is_empty() {
                continue;
            }
            let p = slab.probs[slot];
            // §5.1 strict partition: boundary groups (and NaN) join
            // neither part.
            let positive = match p.partial_cmp(&0.5) {
                Some(core::cmp::Ordering::Greater) => true,
                Some(core::cmp::Ordering::Less) => false,
                _ => continue,
            };
            scan.candidates += 1;
            let cand = GroupPick {
                gi,
                score: -slab.entropies[slot],
                sig_len: g.signature.len(),
                size: g.facts.len(),
            };
            let target = if positive { &mut scan.pos } else { &mut scan.neg };
            // Strict comparison keeps the earliest (lowest-index) member
            // on ties, matching the sequential ascending scan.
            if target.is_none_or(|b| lex_better(&cand, &b)) {
                *target = Some(cand);
            }
        }
        scan
    }
}

/// Runs `f(shard, slab)` for every slab, statically splitting the slab
/// list into balanced contiguous runs over at most `threads` scoped
/// workers. Each slab is visited by exactly one worker, so `f` gets
/// exclusive `&mut` access with no `unsafe` and no locks.
fn for_each_slab<F>(slabs: &mut [ShardSlab], threads: usize, f: F)
where
    F: Fn(usize, &mut ShardSlab) + Sync,
{
    let n = slabs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        for (s, slab) in slabs.iter_mut().enumerate() {
            f(s, slab);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = slabs;
        let mut start = 0usize;
        for count in par::chunk_counts(n, threads) {
            let (head, tail) = rest.split_at_mut(count);
            scope.spawn(move || {
                for (k, slab) in head.iter_mut().enumerate() {
                    f(start + k, slab);
                }
            });
            rest = tail;
            start += count;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pick(gi: usize, score: f64, sig_len: usize, size: usize) -> GroupPick {
        GroupPick { gi, score, sig_len, size }
    }

    #[test]
    fn merge_prefers_lex_then_lowest_group_index() {
        let mut best = None;
        merge_pick(&mut best, None);
        assert!(best.is_none());
        merge_pick(&mut best, Some(pick(9, -0.5, 2, 3)));
        assert_eq!(best.unwrap().gi, 9);
        // Higher score wins.
        merge_pick(&mut best, Some(pick(20, -0.4, 1, 1)));
        assert_eq!(best.unwrap().gi, 20);
        // Equal score: longer signature wins.
        merge_pick(&mut best, Some(pick(30, -0.4, 2, 1)));
        assert_eq!(best.unwrap().gi, 30);
        // Equal score+sig: bigger group wins.
        merge_pick(&mut best, Some(pick(40, -0.4, 2, 5)));
        assert_eq!(best.unwrap().gi, 40);
        // Full tuple tie: LOWER canonical index wins, fold order loses.
        merge_pick(&mut best, Some(pick(4, -0.4, 2, 5)));
        assert_eq!(best.unwrap().gi, 4);
        merge_pick(&mut best, Some(pick(7, -0.4, 2, 5)));
        assert_eq!(best.unwrap().gi, 4);
        // Strictly worse never replaces.
        merge_pick(&mut best, Some(pick(1, -0.41, 9, 9)));
        assert_eq!(best.unwrap().gi, 4);
    }

    #[test]
    fn sequential_config_resolves_to_one_everything() {
        let c = ShardConfig::sequential();
        assert_eq!(c.resolved_shards(), 1);
        assert_eq!(c.resolved_threads(), 1);
        let auto = ShardConfig::default();
        assert_eq!(auto.resolved_shards(), DEFAULT_SHARDS);
        assert!(auto.resolved_threads() >= 1);
        assert_eq!(ShardConfig { shards: 7, threads: 3 }.resolved_shards(), 7);
        assert_eq!(ShardConfig { shards: 7, threads: 3 }.resolved_threads(), 3);
    }
}
