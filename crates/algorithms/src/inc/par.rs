//! Feature-gated parallel scoring for the ΔH candidate loop.
//!
//! Under `--features rayon`, [`map_scores`] fans the per-candidate score
//! computation out over scoped OS threads in fixed positional chunks; the
//! output vector is written by position, so the result — and therefore every
//! downstream argmax and tie-break — is bit-identical to the sequential
//! path. (The feature keeps the upstream crate's name, but is implemented on
//! `std::thread::scope`: the offline build image cannot vendor rayon. The
//! call shape is a drop-in for `par_iter().map().collect()`, so swapping the
//! real crate back in is a one-file change.)
//!
//! Without the feature this module is a zero-cost sequential map.

/// Sequential threshold: below this many candidates the spawn overhead
/// dominates any win, so the parallel build falls back to the plain map.
#[cfg(feature = "rayon")]
const MIN_PARALLEL_ITEMS: usize = 32;

/// Maps `score` over `items`, returning scores in positional order.
#[cfg(feature = "rayon")]
pub(crate) fn map_scores<F>(items: &[usize], score: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n < MIN_PARALLEL_ITEMS {
        return items.iter().map(|&i| score(i)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out = vec![0.0f64; n];
    let score = &score;
    std::thread::scope(|scope| {
        for (out_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, &i) in out_chunk.iter_mut().zip(item_chunk) {
                    *slot = score(i);
                }
            });
        }
    });
    out
}

/// Maps `score` over `items`, returning scores in positional order.
#[cfg(not(feature = "rayon"))]
pub(crate) fn map_scores<F>(items: &[usize], score: F) -> Vec<f64>
where
    F: Fn(usize) -> f64,
{
    items.iter().map(|&i| score(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::map_scores;

    #[test]
    fn preserves_positional_order() {
        let items: Vec<usize> = (0..257).collect();
        let scores = map_scores(&items, |i| i as f64 * 0.5 - 3.0);
        assert_eq!(scores.len(), items.len());
        for (k, &i) in items.iter().enumerate() {
            assert_eq!(scores[k].to_bits(), (i as f64 * 0.5 - 3.0).to_bits());
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert!(map_scores(&[], |_| 0.0).is_empty());
        assert_eq!(map_scores(&[7], |i| i as f64), vec![7.0]);
    }
}
