//! Static scoped-thread scheduling primitives for the sharded engine.
//!
//! Parallelism is the *default* configuration: [`map_scores`] fans the
//! per-candidate score computation out over scoped OS threads in balanced
//! positional chunks, and [`map_indexed`] does the same for per-shard
//! tasks. Output vectors are written by position, so the result — and
//! therefore every downstream argmax and tie-break — is bit-identical to
//! the sequential path whatever the thread count. (The legacy `rayon`
//! feature remains declared as a no-op alias for build compatibility; the
//! implementation is `std::thread::scope` because the offline build image
//! cannot vendor rayon. The call shapes are drop-ins for
//! `par_iter().map().collect()`, so swapping the real crate back in is a
//! one-file change.)
//!
//! Scheduling is deliberately work-stealing-free: every worker gets a
//! contiguous, statically computed run of items ([`chunk_counts`]), which
//! keeps the execution plan a pure function of `(n, threads)`.

/// Sequential threshold for [`map_scores`]: below this many candidates the
/// spawn overhead dominates any win, so the call falls back to a plain map.
const MIN_PARALLEL_ITEMS: usize = 32;

/// Resolves a requested thread count: `0` means "ask the OS"
/// (`available_parallelism`, 1 when unknown); any other value is taken as
/// is. Results never depend on the resolved count — it only sizes the
/// static chunking — so auto-detection is determinism-safe.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Balanced chunk sizes for splitting `n` items over at most `parts`
/// workers: the first `n % parts` chunks take `n/parts + 1` items, the
/// rest `n/parts` — sizes differ by at most one and **no chunk is empty**
/// (the returned vector is truncated to `n` entries when `parts > n`).
///
/// This replaces the former `n.div_ceil(threads)` uniform chunk size,
/// which could starve trailing workers outright: n=33 over 16 threads gave
/// `ceil = 3` → 11 chunks of 3 and 5 idle threads, and the last spawned
/// chunk of a near-boundary split could even be empty.
pub(crate) fn chunk_counts(n: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Maps `f` over `0..n`, returning results in positional order; fans out
/// over at most `threads` scoped workers in balanced contiguous chunks.
/// No sequential-fallback threshold: callers decide when `n` is worth
/// spawning for (per-shard tasks are coarse; per-candidate maps go through
/// [`map_scores`] instead). Public so the serve layer's sharded epoch
/// rescoring reuses the same deterministic scheduler.
pub fn map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send + Default,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<R> = std::iter::repeat_with(R::default).take(n).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        for count in chunk_counts(n, threads) {
            let (head, tail) = rest.split_at_mut(count);
            debug_assert!(!head.is_empty(), "static chunking spawned an empty chunk");
            scope.spawn(move || {
                for (k, slot) in head.iter_mut().enumerate() {
                    *slot = f(start + k);
                }
            });
            rest = tail;
            start += count;
        }
    });
    out
}

/// Maps `score` over `items`, returning scores in positional order. Runs
/// on up to `threads` scoped workers once `items` crosses the sequential
/// threshold; thread count never changes a single output bit.
pub(crate) fn map_scores<F>(items: &[usize], threads: usize, score: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(|&i| score(i)).collect();
    }
    map_indexed(items.len(), threads, |k| score(items[k]))
}

#[cfg(test)]
mod tests {
    use super::{chunk_counts, map_indexed, map_scores, resolve_threads};

    #[test]
    fn preserves_positional_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 8, 16] {
            let scores = map_scores(&items, threads, |i| i as f64 * 0.5 - 3.0);
            assert_eq!(scores.len(), items.len());
            for (k, &i) in items.iter().enumerate() {
                assert_eq!(scores[k].to_bits(), (i as f64 * 0.5 - 3.0).to_bits());
            }
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert!(map_scores(&[], 8, |_| 0.0).is_empty());
        assert_eq!(map_scores(&[7], 8, |i| i as f64), vec![7.0]);
        assert!(map_indexed::<f64, _>(0, 8, |_| 0.0).is_empty());
    }

    #[test]
    fn chunks_are_balanced_and_never_empty() {
        // The regression the balanced split fixes: 33 items over 16
        // threads must produce 16 busy workers (sizes 3 and 2), not 11
        // workers of 3 with 5 idle.
        let counts = chunk_counts(33, 16);
        assert_eq!(counts.len(), 16);
        assert_eq!(counts.iter().sum::<usize>(), 33);
        assert!(counts.iter().all(|&c| c > 0), "empty chunk spawned: {counts:?}");
        assert_eq!(counts.iter().max().unwrap() - counts.iter().min().unwrap(), 1);

        for (n, parts) in [(1, 16), (15, 16), (16, 16), (17, 16), (1000, 7), (5, 1), (0, 4)] {
            let counts = chunk_counts(n, parts);
            assert_eq!(counts.iter().sum::<usize>(), n, "n={n} parts={parts}");
            if n > 0 {
                assert!(counts.iter().all(|&c| c > 0), "n={n} parts={parts}: {counts:?}");
                assert!(counts.len() <= parts.max(1));
                let (max, min) = (counts.iter().max().unwrap(), counts.iter().min().unwrap());
                assert!(max - min <= 1, "unbalanced: {counts:?}");
            }
        }
    }

    #[test]
    fn map_indexed_matches_sequential_for_any_thread_count() {
        let expect: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let got = map_indexed(97, threads, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn resolve_threads_honours_explicit_requests() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(6), 6);
        assert!(resolve_threads(0) >= 1);
    }
}
