//! `BayesEstimate` — the Latent Truth Model of Zhao et al. (PVLDB 2012),
//! the Bayesian probabilistic graphical model the paper compares against
//! (§2.2, §6.1.1).
//!
//! Each fact `f` has a latent truth `t_f ∈ {0, 1}`; each source `s` has two
//! latent error rates — a *false positive rate* `φ⁰_s = P(T vote | fact
//! false)` and a *sensitivity* `φ¹_s = P(T vote | fact true)` — with Beta
//! priors. The paper instantiates the priors exactly as Zhao et al.:
//! `α0 = (100, 10000)` (strong low-FPR prior), `α1 = (50, 50)` (uninformed
//! sensitivity), `β = (10, 10)` (uninformed truth prior); see
//! [`BayesEstimateConfig::paper_priors`].
//!
//! Inference is collapsed Gibbs sampling: the `φ` rates are integrated out
//! analytically (Beta–Bernoulli conjugacy), so the sampler only walks the
//! truth bits. The per-fact conditional is
//!
//! ```text
//! P(t_f = t | rest) ∝ (β_t + m_t^{¬f}) ·
//!     Π_{s ∈ S_f} (α_{t,o_sf} + n_s[t][o_sf]^{¬f}) / (α_{t,0} + α_{t,1} + n_s[t][·]^{¬f})
//! ```
//!
//! where `o_sf ∈ {0, 1}` is the vote polarity, `n_s[t][o]` counts the
//! source's votes of polarity `o` on facts currently assigned truth `t`,
//! and `m_t` counts facts assigned `t`. After burn-in, the posterior truth
//! probability of each fact is the mean of its sampled bits.
//!
//! With a strong high-precision prior and (almost) no `F` votes, every fact
//! with a `T` vote is sampled true with near certainty — reproducing the
//! paper's finding that `BayesEstimate` returns *true for all restaurants*
//! on its data (§2.2).

use corroborate_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Beta prior expressed as the pseudo-count pair `(a, b)` where `a`
/// counts positive outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaPrior {
    /// Pseudo-count of positive outcomes.
    pub a: f64,
    /// Pseudo-count of negative outcomes.
    pub b: f64,
}

impl BetaPrior {
    /// Creates a prior; both pseudo-counts must be positive.
    pub fn new(a: f64, b: f64) -> Result<Self, CoreError> {
        if !(a > 0.0 && b > 0.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("Beta pseudo-counts must be positive, got ({a}, {b})"),
            });
        }
        Ok(Self { a, b })
    }

    /// Prior mean `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }
}

/// Configuration for [`BayesEstimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesEstimateConfig {
    /// Prior on the false positive rate `P(T vote | fact false)`:
    /// `(count of T votes on false facts, count of F votes on false facts)`.
    pub alpha0: BetaPrior,
    /// Prior on the sensitivity `P(T vote | fact true)`.
    pub alpha1: BetaPrior,
    /// Prior on a fact being true.
    pub beta: BetaPrior,
    /// Gibbs iterations discarded before collecting samples.
    pub burn_in: usize,
    /// Gibbs iterations whose samples form the posterior estimate.
    pub samples: usize,
    /// RNG seed — runs are deterministic given the seed.
    pub seed: u64,
}

impl Default for BayesEstimateConfig {
    fn default() -> Self {
        Self::paper_priors(42)
    }
}

impl BayesEstimateConfig {
    /// The exact hyper-parameters the paper uses (§6.1.1):
    /// `α0 = (100, 10000)`, `α1 = (50, 50)`, `β = (10, 10)`.
    pub fn paper_priors(seed: u64) -> Self {
        Self {
            alpha0: BetaPrior { a: 100.0, b: 10_000.0 },
            alpha1: BetaPrior { a: 50.0, b: 50.0 },
            beta: BetaPrior { a: 10.0, b: 10.0 },
            burn_in: 100,
            samples: 400,
            seed,
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        for (name, p) in [("alpha0", self.alpha0), ("alpha1", self.alpha1), ("beta", self.beta)] {
            if !(p.a > 0.0 && p.b > 0.0) {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "{name} pseudo-counts must be positive, got ({}, {})",
                        p.a, p.b
                    ),
                });
            }
        }
        if self.samples == 0 {
            return Err(CoreError::InvalidConfig {
                message: "need at least one Gibbs sample".into(),
            });
        }
        Ok(())
    }
}

/// `BayesEstimate` corroborator (Latent Truth Model). See the
/// module-level documentation.
#[derive(Debug, Clone, Default)]
pub struct BayesEstimate {
    config: BayesEstimateConfig,
}

impl BayesEstimate {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: BayesEstimateConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BayesEstimateConfig {
        &self.config
    }
}

/// Per-source Beta–Bernoulli counts: `n[t][o]` = votes of polarity `o`
/// (1 = T) on facts currently assigned truth `t`.
#[derive(Debug, Clone, Copy, Default)]
struct SourceCounts {
    n: [[f64; 2]; 2],
}

impl Corroborator for BayesEstimate {
    fn name(&self) -> &str {
        "BayesEstimate"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        self.config.validate()?;
        let cfg = &self.config;
        let n_facts = dataset.n_facts();
        let n_sources = dataset.n_sources();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Initial assignment: every fact true (the affirmative default;
        // the chain mixes away from it where the data disagrees).
        let mut truth = vec![true; n_facts];
        let mut counts = vec![SourceCounts::default(); n_sources];
        let mut m = [0.0f64, n_facts as f64]; // facts assigned [false, true]
        for f in dataset.facts() {
            for sv in dataset.votes().votes_on(f) {
                let o = usize::from(sv.vote.is_affirmative());
                counts[sv.source.index()].n[1][o] += 1.0;
            }
        }

        // α indexed as alpha[t][o]: Beta prior on P(o = 1 | truth = t).
        let alpha = [
            [cfg.alpha0.b, cfg.alpha0.a], // t = 0: (F-vote count, T-vote count)
            [cfg.alpha1.b, cfg.alpha1.a], // t = 1
        ];
        let beta = [cfg.beta.b, cfg.beta.a];

        let mut true_samples = vec![0u32; n_facts];
        let total_iters = cfg.burn_in + cfg.samples;

        for iter in 0..total_iters {
            for f in dataset.facts() {
                let fi = f.index();
                let votes = dataset.votes().votes_on(f);
                // Remove f's contributions.
                let t_cur = usize::from(truth[fi]);
                m[t_cur] -= 1.0;
                for sv in votes {
                    let o = usize::from(sv.vote.is_affirmative());
                    counts[sv.source.index()].n[t_cur][o] -= 1.0;
                }
                // Log-scores of both truth values.
                let mut log_score = [0.0f64; 2];
                for (t, ls) in log_score.iter_mut().enumerate() {
                    *ls = (beta[t] + m[t]).ln();
                    for sv in votes {
                        let c = &counts[sv.source.index()].n[t];
                        let o = usize::from(sv.vote.is_affirmative());
                        let num = alpha[t][o] + c[o];
                        let den = alpha[t][0] + alpha[t][1] + c[0] + c[1];
                        *ls += (num / den).ln();
                    }
                }
                let p_true = 1.0 / (1.0 + (log_score[0] - log_score[1]).exp());
                let new_t = rng.gen_bool(p_true.clamp(1e-12, 1.0 - 1e-12));
                truth[fi] = new_t;
                let t_new = usize::from(new_t);
                m[t_new] += 1.0;
                for sv in votes {
                    let o = usize::from(sv.vote.is_affirmative());
                    counts[sv.source.index()].n[t_new][o] += 1.0;
                }
                if iter >= cfg.burn_in && new_t {
                    true_samples[fi] += 1;
                }
            }
        }

        let probs: Vec<f64> = true_samples.iter().map(|&c| c as f64 / cfg.samples as f64).collect();

        // Exported trust: expected fraction of each source's votes that are
        // consistent with the posterior truth probabilities.
        let mut trust = Vec::with_capacity(n_sources);
        for s in dataset.sources() {
            let votes = dataset.votes().votes_by(s);
            if votes.is_empty() {
                trust.push(0.5);
                continue;
            }
            let sum: f64 = votes
                .iter()
                .map(|fv| match fv.vote {
                    Vote::True => probs[fv.fact.index()],
                    Vote::False => 1.0 - probs[fv.fact.index()],
                })
                .sum();
            trust.push(sum / votes.len() as f64);
        }

        CorroborationResult::new(probs, TrustSnapshot::from_values(trust)?, None, total_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn paper_priors_match_section_6_1_1() {
        let cfg = BayesEstimateConfig::paper_priors(1);
        assert_eq!((cfg.alpha0.a, cfg.alpha0.b), (100.0, 10_000.0));
        assert_eq!((cfg.alpha1.a, cfg.alpha1.b), (50.0, 50.0));
        assert_eq!((cfg.beta.a, cfg.beta.b), (10.0, 10.0));
        assert!(cfg.alpha0.mean() < 0.01, "FPR prior must be strongly low");
        assert_eq!(cfg.alpha1.mean(), 0.5);
    }

    #[test]
    fn motivating_example_declares_everything_true() {
        // §2.2: "Using the BayesEstimate algorithm we obtain a result of
        // true for all restaurants" — the high-precision-low-recall prior
        // makes F votes nearly weightless.
        let ds = motivating_example();
        let r = BayesEstimate::default().corroborate(&ds).unwrap();
        for f in ds.facts() {
            assert!(
                r.decisions().label(f).as_bool(),
                "{} should be declared true (p = {})",
                ds.fact_name(f),
                r.probability(f)
            );
        }
        let m = r.confusion(&ds).unwrap();
        assert_eq!(m.recall(), 1.0);
        assert!((m.precision() - 7.0 / 12.0).abs() < 1e-9); // 0.58
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = motivating_example();
        let a = BayesEstimate::new(BayesEstimateConfig::paper_priors(7)).corroborate(&ds).unwrap();
        let b = BayesEstimate::new(BayesEstimateConfig::paper_priors(7)).corroborate(&ds).unwrap();
        assert_eq!(a.probabilities(), b.probabilities());
    }

    #[test]
    fn balanced_priors_respect_strong_negative_evidence() {
        // With an *uninformed* FPR prior, a fact contradicted by many
        // sources and supported by none must come out false.
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..5).map(|i| b.add_source(format!("s{i}"))).collect();
        // 10 facts everyone affirms, 1 fact everyone denies.
        for i in 0..10 {
            let f = b.add_fact(format!("good{i}"));
            for &s in &sources {
                b.cast(s, f, Vote::True).unwrap();
            }
        }
        let mut denied_facts = Vec::new();
        for i in 0..3 {
            let f = b.add_fact(format!("denied{i}"));
            for &s in &sources {
                b.cast(s, f, Vote::False).unwrap();
            }
            denied_facts.push(f);
        }
        let denied = denied_facts[0];
        let ds = b.build().unwrap();
        // Weak but *asymmetric* priors: the asymmetry (low FPR, high
        // sensitivity) is what makes the truth bits identifiable — fully
        // symmetric priors admit a label-flipped posterior mode — while the
        // low pseudo-counts let five unanimous F votes dominate. The
        // paper's α1 = (50, 50) is strong enough that they would not;
        // that's the §2.2 failure mode.
        let cfg = BayesEstimateConfig {
            alpha0: BetaPrior { a: 2.0, b: 8.0 },
            alpha1: BetaPrior { a: 8.0, b: 2.0 },
            ..BayesEstimateConfig::paper_priors(3)
        };
        let r = BayesEstimate::new(cfg).corroborate(&ds).unwrap();
        assert!(r.probability(denied) < 0.5);
        assert!(r.probability(FactId::new(0)) > 0.5);
    }

    #[test]
    fn invalid_config_rejected() {
        let ds = motivating_example();
        let mut cfg = BayesEstimateConfig::paper_priors(1);
        cfg.samples = 0;
        assert!(BayesEstimate::new(cfg).corroborate(&ds).is_err());
        let mut cfg = BayesEstimateConfig::paper_priors(1);
        cfg.beta = BetaPrior { a: 0.0, b: 1.0 };
        assert!(BayesEstimate::new(cfg).corroborate(&ds).is_err());
        assert!(BetaPrior::new(0.0, 1.0).is_err());
        assert!(BetaPrior::new(1.0, 1.0).is_ok());
    }
}
