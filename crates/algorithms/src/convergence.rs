//! Iteration control shared by the iterative corroborators.

use corroborate_core::error::CoreError;

/// Caps and tolerances for fixed-point iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationControl {
    /// Hard cap on iterations (the algorithms stop and return the last
    /// iterate when reached).
    pub max_iterations: usize,
    /// Convergence tolerance on the max-abs change of the trust vector
    /// between consecutive iterations.
    pub tolerance: f64,
}

impl Default for IterationControl {
    fn default() -> Self {
        Self { max_iterations: 100, tolerance: 1e-6 }
    }
}

impl IterationControl {
    /// Validates the parameters.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when `max_iterations == 0` or the
    /// tolerance is negative/NaN.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_iterations == 0 {
            return Err(CoreError::InvalidConfig {
                message: "max_iterations must be at least 1".into(),
            });
        }
        if self.tolerance.is_nan() || self.tolerance < 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("tolerance must be non-negative, got {}", self.tolerance),
            });
        }
        Ok(())
    }

    /// `true` when `residual` is within tolerance.
    #[inline]
    pub fn converged(&self, residual: f64) -> bool {
        residual <= self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        IterationControl::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_iterations_and_nan_tolerance() {
        assert!(IterationControl { max_iterations: 0, tolerance: 0.0 }.validate().is_err());
        assert!(IterationControl { max_iterations: 5, tolerance: f64::NAN }.validate().is_err());
        assert!(IterationControl { max_iterations: 5, tolerance: -1.0 }.validate().is_err());
    }

    #[test]
    fn convergence_check() {
        let c = IterationControl { max_iterations: 10, tolerance: 1e-3 };
        assert!(c.converged(1e-4));
        assert!(c.converged(1e-3));
        assert!(!c.converged(2e-3));
    }
}
