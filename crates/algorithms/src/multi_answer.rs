//! Multi-answer corroboration (the paper's §6.2.6 Hubdub experiment).
//!
//! A Hubdub-style dataset groups facts into *questions* with several
//! mutually-exclusive candidate answers; a user voting `T` for one
//! candidate is implicitly voting `F` for the siblings it stays silent on.
//! [`MultiAnswer`] adapts any binary [`Corroborator`] to this setting:
//!
//! 1. optionally *expand* implicit negatives into explicit `F` votes;
//! 2. run the inner corroborator on the (expanded) dataset;
//! 3. optionally re-decide each question by *argmax*: exactly the
//!    highest-probability candidate is declared true.
//!
//! The error metric the paper reports for this experiment (`#errors =
//! FP + FN` over candidate facts) is [`ConfusionMatrix::errors`].

use corroborate_core::prelude::*;
use corroborate_core::questions::QuestionStructure;

/// How per-question decisions are derived from candidate probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionPolicy {
    /// Keep the inner corroborator's independent 0.5-threshold decisions.
    Threshold,
    /// Declare exactly one candidate per question true: the one with the
    /// highest probability (ties broken toward the lowest fact id).
    /// This matches settled single-answer questions. Default.
    #[default]
    Argmax,
}

/// Configuration for [`MultiAnswer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiAnswerConfig {
    /// Expand implicit negatives: a source voting `T` on a candidate casts
    /// synthetic `F` votes on the question's other candidates (unless it
    /// voted on them explicitly). Galland et al. use this expansion for
    /// their Hubdub experiments; enabled by default.
    pub expand_implicit_negatives: bool,
    /// Decision policy after corroboration.
    pub decision: DecisionPolicy,
}

impl Default for MultiAnswerConfig {
    fn default() -> Self {
        Self { expand_implicit_negatives: true, decision: DecisionPolicy::Argmax }
    }
}

/// Adapter running a binary corroborator over a multi-answer dataset.
#[derive(Debug, Clone)]
pub struct MultiAnswer<C> {
    inner: C,
    config: MultiAnswerConfig,
    name: String,
}

impl<C: Corroborator> MultiAnswer<C> {
    /// Wraps `inner` with the default configuration.
    pub fn new(inner: C) -> Self {
        Self::with_config(inner, MultiAnswerConfig::default())
    }

    /// Wraps `inner` with an explicit configuration.
    pub fn with_config(inner: C, config: MultiAnswerConfig) -> Self {
        let name = format!("MultiAnswer({})", inner.name());
        Self { inner, config, name }
    }

    /// The wrapped corroborator.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

/// Builds the expanded dataset with implicit `F` votes materialised.
///
/// Exposed for tests and for callers that want to inspect the expansion.
pub fn expand_implicit_negatives(dataset: &Dataset) -> Result<Dataset, CoreError> {
    let questions = dataset.require_questions()?;
    let mut b = DatasetBuilder::new();
    for s in dataset.sources() {
        b.add_source(dataset.source_name(s).to_string());
    }
    let truth = dataset.ground_truth();
    for f in dataset.facts() {
        match truth.map(|t| t.label(f)) {
            Some(l) => b.add_fact_with_truth(dataset.fact_name(f).to_string(), l),
            None => b.add_fact(dataset.fact_name(f).to_string()),
        };
    }
    b.set_question_assignments(dataset.facts().map(|f| questions.question_of(f)).collect());
    // Explicit votes first (they win over synthetic negatives).
    for f in dataset.facts() {
        for sv in dataset.votes().votes_on(f) {
            b.cast(sv.source, f, sv.vote)?;
        }
    }
    // Synthetic negatives: for each explicit T vote, F votes on the
    // sibling candidates the source did not vote on.
    for f in dataset.facts() {
        for sv in dataset.votes().votes_on(f) {
            if !sv.vote.is_affirmative() {
                continue;
            }
            for sib in questions.siblings(f) {
                if dataset.votes().vote(sv.source, sib).is_none() {
                    b.cast(sv.source, sib, Vote::False)?;
                }
            }
        }
    }
    b.build()
}

/// Applies the argmax policy: per question, probabilities are replaced so
/// the (unique) winner is ≥ 0.5 and all others < 0.5, preserving the
/// winner's original probability for reporting.
fn argmax_probabilities(questions: &QuestionStructure, probs: &mut [f64]) {
    for q in questions.questions() {
        let candidates = questions.candidates(q);
        let mut winner = candidates[0];
        for &c in candidates {
            if probs[c.index()] > probs[winner.index()] {
                winner = c;
            }
        }
        for &c in candidates {
            if c == winner {
                probs[c.index()] = probs[c.index()].max(0.5);
            } else {
                probs[c.index()] = probs[c.index()].min(0.5 - 1e-9);
            }
        }
    }
}

impl<C: Corroborator> Corroborator for MultiAnswer<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        let questions = dataset.require_questions()?.clone();
        let result = if self.config.expand_implicit_negatives {
            let expanded = expand_implicit_negatives(dataset)?;
            self.inner.corroborate(&expanded)?
        } else {
            self.inner.corroborate(dataset)?
        };
        let mut probs = result.probabilities().to_vec();
        if self.config.decision == DecisionPolicy::Argmax {
            argmax_probabilities(&questions, &mut probs);
        }
        CorroborationResult::new(
            probs,
            result.trust().clone(),
            result.trajectory().cloned(),
            result.rounds(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Voting;
    use crate::galland::TwoEstimates;

    /// Two questions: q0 with 3 candidates (answer = c1), q1 with 2
    /// (answer = c0). Three users.
    fn quiz() -> Dataset {
        let mut b = DatasetBuilder::new();
        let u: Vec<SourceId> = (0..3).map(|i| b.add_source(format!("u{i}"))).collect();
        // q0 candidates: facts 0,1,2 — truth: fact 1.
        let q0: Vec<FactId> = [false, true, false]
            .iter()
            .enumerate()
            .map(|(i, &t)| b.add_fact_with_truth(format!("q0c{i}"), Label::from_bool(t)))
            .collect();
        // q1 candidates: facts 3,4 — truth: fact 3.
        let q1: Vec<FactId> = [true, false]
            .iter()
            .enumerate()
            .map(|(i, &t)| b.add_fact_with_truth(format!("q1c{i}"), Label::from_bool(t)))
            .collect();
        b.set_question_assignments(vec![
            QuestionId::new(0),
            QuestionId::new(0),
            QuestionId::new(0),
            QuestionId::new(1),
            QuestionId::new(1),
        ]);
        // u0 and u1 answer q0 correctly; u2 picks the wrong candidate.
        b.cast(u[0], q0[1], Vote::True).unwrap();
        b.cast(u[1], q0[1], Vote::True).unwrap();
        b.cast(u[2], q0[2], Vote::True).unwrap();
        // q1: u0 right, u2 wrong.
        b.cast(u[0], q1[0], Vote::True).unwrap();
        b.cast(u[2], q1[1], Vote::True).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn expansion_adds_sibling_negatives_only() {
        let ds = quiz();
        let ex = expand_implicit_negatives(&ds).unwrap();
        // u0 voted T on q0c1 → F on q0c0 and q0c2; T on q1c0 → F on q1c1.
        let u0 = SourceId::new(0);
        assert_eq!(ex.votes().vote(u0, FactId::new(0)), Some(Vote::False));
        assert_eq!(ex.votes().vote(u0, FactId::new(1)), Some(Vote::True));
        assert_eq!(ex.votes().vote(u0, FactId::new(2)), Some(Vote::False));
        assert_eq!(ex.votes().vote(u0, FactId::new(4)), Some(Vote::False));
        // u1 never touched q1 → stays silent there.
        let u1 = SourceId::new(1);
        assert_eq!(ex.votes().vote(u1, FactId::new(3)), None);
        assert_eq!(ex.votes().vote(u1, FactId::new(4)), None);
        // Ground truth and question structure survive the expansion.
        assert_eq!(ex.ground_truth().unwrap().n_true(), 2);
        assert_eq!(ex.questions().unwrap().n_questions(), 2);
    }

    #[test]
    fn argmax_declares_exactly_one_candidate_per_question() {
        let ds = quiz();
        let r = MultiAnswer::new(TwoEstimates::default()).corroborate(&ds).unwrap();
        let q = ds.questions().unwrap();
        for question in q.questions() {
            let winners = q
                .candidates(question)
                .iter()
                .filter(|&&c| r.decisions().label(c).as_bool())
                .count();
            assert_eq!(winners, 1, "{question}");
        }
    }

    #[test]
    fn majority_answer_wins_with_voting_inner() {
        let ds = quiz();
        let r = MultiAnswer::new(Voting).corroborate(&ds).unwrap();
        // q0: two votes for c1, one for c2 → c1.
        assert!(r.decisions().label(FactId::new(1)).as_bool());
        assert!(!r.decisions().label(FactId::new(2)).as_bool());
        let m = r.confusion(&ds).unwrap();
        // q0 perfect; q1 is a 1-1 tie — whichever way it goes, at most 2
        // errors (one FP + one FN).
        assert!(m.errors() <= 2);
    }

    #[test]
    fn corroboration_breaks_the_q1_tie_with_user_quality() {
        // u0 proved reliable on q0, u2 did not; 2-Estimates on the expanded
        // dataset must break q1 toward u0's answer.
        let ds = quiz();
        let r = MultiAnswer::new(TwoEstimates::default()).corroborate(&ds).unwrap();
        assert!(r.decisions().label(FactId::new(3)).as_bool(), "u0's answer wins");
        assert!(!r.decisions().label(FactId::new(4)).as_bool());
        assert_eq!(r.confusion(&ds).unwrap().errors(), 0);
    }

    #[test]
    fn requires_question_structure() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("f");
        let ds = b.build().unwrap();
        let e = MultiAnswer::new(Voting).corroborate(&ds);
        assert!(matches!(e, Err(CoreError::MissingComponent { .. })));
    }

    #[test]
    fn threshold_policy_keeps_inner_decisions() {
        let ds = quiz();
        let cfg = MultiAnswerConfig {
            expand_implicit_negatives: false,
            decision: DecisionPolicy::Threshold,
        };
        let r = MultiAnswer::with_config(Voting, cfg).corroborate(&ds).unwrap();
        let plain = Voting.corroborate(&ds).unwrap();
        assert_eq!(r.decisions().labels(), plain.decisions().labels());
    }
}
