//! The Galland et al. (WSDM 2010) algorithm family: [`TwoEstimates`],
//! [`ThreeEstimates`] and [`Cosine`] — the iterative single-trust-score
//! corroborators the paper compares IncEstimate against.

mod cosine;
mod normalization;
mod three_estimates;
mod two_estimates;

pub use cosine::{Cosine, CosineConfig};
pub use normalization::Normalization;
pub use three_estimates::{ThreeEstimates, ThreeEstimatesConfig};
pub use two_estimates::{TwoEstimates, TwoEstimatesConfig};
