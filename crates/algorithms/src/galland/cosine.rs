//! The `Cosine` algorithm (Galland et al., WSDM 2010).
//!
//! Facts carry signed value estimates in `[−1, 1]` (+1 = surely true);
//! a source's trust is the cosine similarity between its vote vector
//! (±1 per vote) and the current value estimates, damped against the
//! previous trust. Included as an ablation baseline from the same family
//! the paper compares against.

use corroborate_core::prelude::*;
use corroborate_obs::{Counter, IterationRecord, Observer, Span, NOOP};

use crate::convergence::IterationControl;
use crate::{traced, OBS_EMIT};

/// Configuration for [`Cosine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineConfig {
    /// Initial trust for every source.
    pub initial_trust: f64,
    /// Damping factor `η ∈ [0, 1)`: `t ← η·t_old + (1−η)·t_new`.
    pub damping: f64,
    /// Iteration cap and convergence tolerance.
    pub iteration: IterationControl,
}

impl Default for CosineConfig {
    fn default() -> Self {
        Self { initial_trust: 0.8, damping: 0.2, iteration: IterationControl::default() }
    }
}

impl CosineConfig {
    fn validate(&self) -> Result<(), CoreError> {
        corroborate_core::error::check_probability("initial trust", self.initial_trust)?;
        if !(0.0..1.0).contains(&self.damping) {
            return Err(CoreError::InvalidConfig {
                message: format!("damping must be in [0, 1), got {}", self.damping),
            });
        }
        self.iteration.validate()
    }
}

/// `Cosine` corroborator. See the module-level documentation.
#[derive(Debug, Clone, Default)]
pub struct Cosine {
    config: CosineConfig,
}

impl Cosine {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: CosineConfig) -> Self {
        Self { config }
    }

    /// [`Corroborator::corroborate`] with telemetry: every fixpoint
    /// iteration emits an [`IterationRecord`] carrying the trust residual
    /// the convergence test thresholds, plus iteration counters and span
    /// timings.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn corroborate_observed<O: Observer>(
        &self,
        dataset: &Dataset,
        obs: &O,
    ) -> Result<CorroborationResult, CoreError> {
        self.config.validate()?;
        let cfg = &self.config;
        // Trust lives in [-1, 1] internally (a perfectly anti-correlated
        // source has cosine −1); exported trust is mapped to [0, 1].
        let mut trust = vec![cfg.initial_trust; dataset.n_sources()];
        // Signed value estimate per fact.
        let mut value = vec![0.0f64; dataset.n_facts()];
        let mut rounds = 0;

        for _ in 0..cfg.iteration.max_iterations {
            rounds += 1;
            let residual = traced(obs, Span::Iteration, (rounds - 1) as u64, || {
                // Value step: trust-weighted average of signed votes.
                for f in dataset.facts() {
                    let votes = dataset.votes().votes_on(f);
                    if votes.is_empty() {
                        value[f.index()] = 0.0;
                        continue;
                    }
                    let sum: f64 = votes
                        .iter()
                        .map(|sv| {
                            let sign = if sv.vote.is_affirmative() { 1.0 } else { -1.0 };
                            sign * trust[sv.source.index()]
                        })
                        .sum();
                    value[f.index()] = (sum / votes.len() as f64).clamp(-1.0, 1.0);
                }
                // Trust step: cosine between the source's ±1 vote vector
                // and the value estimates on its support, damped.
                let previous = trust.clone();
                for s in dataset.sources() {
                    let votes = dataset.votes().votes_by(s);
                    if votes.is_empty() {
                        continue;
                    }
                    let mut dot = 0.0;
                    let mut norm_v = 0.0;
                    for fv in votes {
                        let sign = if fv.vote.is_affirmative() { 1.0 } else { -1.0 };
                        let v = value[fv.fact.index()];
                        dot += sign * v;
                        norm_v += v * v;
                    }
                    // The vote vector's norm is sqrt(|votes|) since entries
                    // are ±1.
                    let denom = (votes.len() as f64).sqrt() * norm_v.sqrt();
                    let cosine = if denom < 1e-12 { 0.0 } else { dot / denom };
                    trust[s.index()] =
                        cfg.damping * previous[s.index()] + (1.0 - cfg.damping) * cosine;
                }
                trust.iter().zip(&previous).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
            });
            if O::ENABLED && OBS_EMIT {
                obs.add(Counter::Iterations, 1);
                obs.iteration(&IterationRecord { iteration: rounds - 1, residual });
            }
            if cfg.iteration.converged(residual) {
                break;
            }
        }

        let probs: Vec<f64> = value.iter().map(|v| ((v + 1.0) / 2.0).clamp(0.0, 1.0)).collect();
        let exported = TrustSnapshot::from_values(
            trust.iter().map(|t| ((t + 1.0) / 2.0).clamp(0.0, 1.0)).collect(),
        )?;
        CorroborationResult::new(probs, exported, None, rounds)
    }
}

impl Corroborator for Cosine {
    fn name(&self) -> &str {
        "Cosine"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        self.corroborate_observed(dataset, &NOOP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn majority_wins_on_conflicted_facts() {
        let mut b = DatasetBuilder::new();
        let good: Vec<_> = (0..3).map(|i| b.add_source(format!("g{i}"))).collect();
        let bad = b.add_source("bad");
        for i in 0..10 {
            let f = b.add_fact(format!("f{i}"));
            for &g in &good {
                b.cast(g, f, Vote::True).unwrap();
            }
            b.cast(bad, f, Vote::False).unwrap();
        }
        let ds = b.build().unwrap();
        let r = Cosine::default().corroborate(&ds).unwrap();
        assert!(r.decisions().labels().iter().all(|l| l.as_bool()));
        assert!(r.trust().trust(bad) < r.trust().trust(good[0]));
    }

    #[test]
    fn motivating_example_keeps_r12_lowest() {
        let ds = motivating_example();
        let r = Cosine::default().corroborate(&ds).unwrap();
        let r12 = FactId::new(11);
        let min = r.probabilities().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((r.probability(r12) - min).abs() < 1e-9);
    }

    #[test]
    fn voteless_fact_is_uncertain() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("silent");
        let ds = b.build().unwrap();
        let r = Cosine::default().corroborate(&ds).unwrap();
        assert!((r.probabilities()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn damping_must_be_below_one() {
        let cfg = CosineConfig { damping: 1.0, ..Default::default() };
        let ds = motivating_example();
        assert!(Cosine::new(cfg).corroborate(&ds).is_err());
    }
}
