//! Normalisation schemes for the Galland-style fixed-point iterations.
//!
//! Galland et al. observed that the raw fixed point of the
//! estimate-facts / estimate-sources iteration collapses toward the
//! uninformative 0.5, and counteract it by *normalising* estimates after
//! each step. The paper under reproduction describes the variant where a
//! value `≥ 0.5` becomes `1` and `< 0.5` becomes `0` (§2.1: "the
//! TwoEstimate normalizes the probability of a restaurant or the
//! trustworthiness of a source to 1 if it is greater than or equal to
//! 0.5"); Galland's original also used an affine rescale of the whole
//! vector onto `[0, 1]`.

/// How intermediate estimates are normalised between iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Round to {0, 1} at the 0.5 threshold — the variant the reproduced
    /// paper describes and analyses. Default.
    #[default]
    Rounding,
    /// Affine rescale of the vector onto the full `[0, 1]` range
    /// (min → 0, max → 1); a constant vector is left unchanged.
    LinearRescale,
    /// No normalisation (exposes the raw fixed point; converges to
    /// uninformative estimates on conflict-free data — kept for ablations).
    None,
}

impl Normalization {
    /// Applies the scheme to `values` in place.
    pub fn apply(self, values: &mut [f64]) {
        match self {
            Normalization::Rounding => {
                for v in values.iter_mut() {
                    *v = if *v >= 0.5 { 1.0 } else { 0.0 };
                }
            }
            Normalization::LinearRescale => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in values.iter() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
                    return;
                }
                let span = hi - lo;
                for v in values.iter_mut() {
                    *v = (*v - lo) / span;
                }
            }
            Normalization::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_thresholds_at_half_inclusive() {
        let mut v = vec![0.49, 0.5, 0.51, 0.0, 1.0];
        Normalization::Rounding.apply(&mut v);
        assert_eq!(v, vec![0.0, 1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn linear_rescale_spans_unit_interval() {
        let mut v = vec![0.2, 0.4, 0.6];
        Normalization::LinearRescale.apply(&mut v);
        for (got, want) in v.iter().zip([0.0, 0.5, 1.0]) {
            assert!((got - want).abs() < 1e-12, "{v:?}");
        }
    }

    #[test]
    fn linear_rescale_leaves_constant_vectors() {
        let mut v = vec![0.7, 0.7];
        Normalization::LinearRescale.apply(&mut v);
        assert_eq!(v, vec![0.7, 0.7]);
        let mut empty: Vec<f64> = vec![];
        Normalization::LinearRescale.apply(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn none_is_identity() {
        let mut v = vec![0.3, 0.9];
        Normalization::None.apply(&mut v);
        assert_eq!(v, vec![0.3, 0.9]);
    }

    #[test]
    fn default_is_rounding() {
        assert_eq!(Normalization::default(), Normalization::Rounding);
    }
}
