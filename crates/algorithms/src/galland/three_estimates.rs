//! The `3-Estimates` algorithm (Galland et al., WSDM 2010).
//!
//! Extends `2-Estimates` with a third estimate: a per-fact *difficulty*
//! `φ(f) ∈ [0, 1]`. A source's vote on an easy fact (`φ ≈ 0`) is assumed
//! correct regardless of the source; on a hard fact the source's own error
//! rate dominates. The probability that source `s` votes correctly on fact
//! `f` is modelled as `c(s, f) = 1 − ε(s)·φ(f)` where `ε(s)` is the
//! source's error factor.
//!
//! The reproduced paper notes (§2.1, footnote 3) that with affirmative-only
//! data 3-Estimates degenerates to 2-Estimates — there is no disagreement
//! from which to estimate difficulty — and uses it only on the Hubdub
//! dataset (Table 7), where it scored within one error of 2-Estimates.
//! This implementation follows the structure of Galland's algorithm
//! (alternating estimates with post-step normalisation); the exact update
//! expressions are reconstructed from the paper's description, as the
//! original implementation is not public.

use corroborate_core::prelude::*;
use corroborate_obs::{Counter, IterationRecord, Observer, Span, NOOP};

use super::Normalization;
use crate::convergence::IterationControl;
use crate::{traced, OBS_EMIT};

/// Configuration for [`ThreeEstimates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeEstimatesConfig {
    /// Initial error factor `ε(s)` for every source (low = trusted).
    pub initial_error: f64,
    /// Initial difficulty `φ(f)` for every fact.
    pub initial_difficulty: f64,
    /// Prior probability for voteless facts.
    pub voteless_prior: f64,
    /// Normalisation applied to fact probabilities between iterations.
    pub normalization: Normalization,
    /// Iteration cap and convergence tolerance.
    pub iteration: IterationControl,
}

impl Default for ThreeEstimatesConfig {
    fn default() -> Self {
        Self {
            initial_error: 0.1,
            initial_difficulty: 0.5,
            voteless_prior: 0.5,
            normalization: Normalization::default(),
            iteration: IterationControl::default(),
        }
    }
}

impl ThreeEstimatesConfig {
    fn validate(&self) -> Result<(), CoreError> {
        corroborate_core::error::check_probability("initial error", self.initial_error)?;
        corroborate_core::error::check_probability("initial difficulty", self.initial_difficulty)?;
        corroborate_core::error::check_probability("voteless prior", self.voteless_prior)?;
        self.iteration.validate()
    }
}

/// `3-Estimates` corroborator. See the module-level documentation.
#[derive(Debug, Clone, Default)]
pub struct ThreeEstimates {
    config: ThreeEstimatesConfig,
}

impl ThreeEstimates {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: ThreeEstimatesConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ThreeEstimatesConfig {
        &self.config
    }

    /// [`Corroborator::corroborate`] with telemetry: every fixpoint
    /// iteration emits an [`IterationRecord`] carrying the error-factor
    /// residual the convergence test thresholds, plus iteration counters
    /// and span timings.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn corroborate_observed<O: Observer>(
        &self,
        dataset: &Dataset,
        obs: &O,
    ) -> Result<CorroborationResult, CoreError> {
        self.config.validate()?;
        let cfg = &self.config;
        let n_facts = dataset.n_facts();
        let mut error = vec![cfg.initial_error; dataset.n_sources()];
        let mut difficulty = vec![cfg.initial_difficulty; n_facts];
        let mut probs = vec![cfg.voteless_prior; n_facts];
        let mut rounds = 0;

        let score_facts = |error: &[f64], difficulty: &[f64], probs: &mut [f64]| {
            for f in dataset.facts() {
                let votes = dataset.votes().votes_on(f);
                if votes.is_empty() {
                    probs[f.index()] = cfg.voteless_prior;
                    continue;
                }
                let sum: f64 = votes
                    .iter()
                    .map(|sv| {
                        // Probability the vote is correct given the
                        // source's error factor and the fact's difficulty.
                        let correct = 1.0 - error[sv.source.index()] * difficulty[f.index()];
                        match sv.vote {
                            Vote::True => correct,
                            Vote::False => 1.0 - correct,
                        }
                    })
                    .sum();
                probs[f.index()] = (sum / votes.len() as f64).clamp(0.0, 1.0);
            }
        };

        for _ in 0..cfg.iteration.max_iterations {
            rounds += 1;
            let residual = traced(obs, Span::Iteration, (rounds - 1) as u64, || {
                score_facts(&error, &difficulty, &mut probs);
                cfg.normalization.apply(&mut probs);

                // Observed wrongness of each vote under the current
                // estimates: w(s, f) = |vote − p(f)|.
                // Difficulty: the average wrongness of the votes on the
                // fact — a fact everybody gets right is easy.
                let mut new_difficulty = vec![0.0; n_facts];
                for f in dataset.facts() {
                    let votes = dataset.votes().votes_on(f);
                    if votes.is_empty() {
                        new_difficulty[f.index()] = cfg.initial_difficulty;
                        continue;
                    }
                    let w: f64 = votes
                        .iter()
                        .map(|sv| {
                            let ind = if sv.vote.is_affirmative() { 1.0 } else { 0.0 };
                            (ind - probs[f.index()]).abs()
                        })
                        .sum();
                    new_difficulty[f.index()] = w / votes.len() as f64;
                }

                // Error factor: average wrongness of the source's votes,
                // discounted by difficulty — being wrong on a hard fact is
                // less indicative of a bad source (the 1/(φ + ½) weighting
                // keeps the factor bounded while preserving Galland's
                // "difficulty excuses errors" coupling).
                let previous_error = error.clone();
                for s in dataset.sources() {
                    let votes = dataset.votes().votes_by(s);
                    if votes.is_empty() {
                        continue;
                    }
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for fv in votes {
                        let ind = if fv.vote.is_affirmative() { 1.0 } else { 0.0 };
                        let wrong = (ind - probs[fv.fact.index()]).abs();
                        let weight = 1.0 / (new_difficulty[fv.fact.index()] + 0.5);
                        num += wrong * weight;
                        den += weight;
                    }
                    error[s.index()] = (num / den).clamp(0.0, 1.0);
                }
                difficulty = new_difficulty;

                error.iter().zip(&previous_error).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
            });
            if O::ENABLED && OBS_EMIT {
                obs.add(Counter::Iterations, 1);
                obs.iteration(&IterationRecord { iteration: rounds - 1, residual });
            }
            if cfg.iteration.converged(residual) {
                break;
            }
        }

        score_facts(&error, &difficulty, &mut probs);
        let trust = TrustSnapshot::from_values(error.iter().map(|e| 1.0 - e).collect())?;
        CorroborationResult::new(probs, trust, None, rounds)
    }
}

impl Corroborator for ThreeEstimates {
    fn name(&self) -> &str {
        "ThreeEstimate"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        self.corroborate_observed(dataset, &NOOP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galland::TwoEstimates;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn degenerates_to_two_estimates_decisions_on_motivating_example() {
        // Footnote 3: with (almost) only T votes, 3-Estimates simplifies to
        // 2-Estimates. Decisions must match exactly.
        let ds = motivating_example();
        let three = ThreeEstimates::default().corroborate(&ds).unwrap();
        let two = TwoEstimates::default().corroborate(&ds).unwrap();
        assert_eq!(three.decisions().labels(), two.decisions().labels());
    }

    #[test]
    fn consistent_sources_get_low_error() {
        let mut b = DatasetBuilder::new();
        let good: Vec<_> = (0..3).map(|i| b.add_source(format!("g{i}"))).collect();
        let bad = b.add_source("bad");
        for i in 0..10 {
            let f = b.add_fact(format!("f{i}"));
            for &g in &good {
                b.cast(g, f, Vote::True).unwrap();
            }
            b.cast(bad, f, Vote::False).unwrap();
        }
        let ds = b.build().unwrap();
        let r = ThreeEstimates::default().corroborate(&ds).unwrap();
        assert!(r.trust().trust(good[0]) > 0.9);
        assert!(r.trust().trust(bad) < 0.1);
        assert!(r.decisions().labels().iter().all(|l| l.as_bool()));
    }

    #[test]
    fn unanimous_facts_have_zero_difficulty_effect() {
        // With unanimous correct votes the model must be confident.
        let mut b = DatasetBuilder::new();
        let s0 = b.add_source("a");
        let s1 = b.add_source("b");
        for i in 0..5 {
            let f = b.add_fact(format!("f{i}"));
            b.cast(s0, f, Vote::True).unwrap();
            b.cast(s1, f, Vote::True).unwrap();
        }
        let ds = b.build().unwrap();
        let r = ThreeEstimates::default().corroborate(&ds).unwrap();
        for f in ds.facts() {
            assert!(r.probability(f) > 0.9);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = ThreeEstimatesConfig { initial_error: -0.1, ..Default::default() };
        let ds = motivating_example();
        assert!(ThreeEstimates::new(cfg).corroborate(&ds).is_err());
    }

    #[test]
    fn voteless_fact_keeps_prior() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("silent");
        let ds = b.build().unwrap();
        let r = ThreeEstimates::default().corroborate(&ds).unwrap();
        assert!((r.probabilities()[0] - 0.5).abs() < 1e-12);
    }
}
