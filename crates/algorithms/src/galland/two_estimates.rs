//! The `2-Estimates` algorithm (Galland et al., WSDM 2010) — the paper's
//! `TwoEstimate` baseline (§2.1).
//!
//! Iterates two coupled estimates until the trust vector stabilises:
//!
//! 1. **Corrob** — each fact's truth probability is the average, over its
//!    voting sources, of the probability the vote is consistent with the
//!    fact being true (Equation 5, generalised to `F` votes);
//! 2. **Normalise** — fact probabilities are normalised (by default rounded
//!    to `{0, 1}`, the variant the reproduced paper describes);
//! 3. **Update** — each source's trust is the average, over its votes, of
//!    the (normalised) probability the vote was right.
//!
//! In the affirmative-statement regime this collapses exactly the way §4.2
//! predicts: every `T`-only fact rounds to `1`, so every source looks
//! near-perfect, so every `T`-only fact stays `1` — the limitation
//! IncEstimate is designed to escape. The unit tests below pin down that
//! behaviour on the motivating example (trust `{1, 1, 0.8, 0.9, 1}`, all
//! facts true except `r12`).

use corroborate_core::prelude::*;
use corroborate_core::scoring::corrob_probability_or;
use corroborate_obs::{Counter, IterationRecord, Observer, Span, NOOP};

use super::Normalization;
use crate::convergence::IterationControl;
use crate::{traced, OBS_EMIT};

/// Configuration for [`TwoEstimates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoEstimatesConfig {
    /// Initial trust score for every source (the paper uses 0.9).
    pub initial_trust: f64,
    /// Prior probability assigned to facts with no votes.
    pub voteless_prior: f64,
    /// Normalisation applied to fact probabilities between iterations.
    pub normalization: Normalization,
    /// Iteration cap and convergence tolerance.
    pub iteration: IterationControl,
}

impl Default for TwoEstimatesConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            voteless_prior: 0.5,
            normalization: Normalization::default(),
            iteration: IterationControl::default(),
        }
    }
}

impl TwoEstimatesConfig {
    fn validate(&self) -> Result<(), CoreError> {
        corroborate_core::error::check_probability("initial trust", self.initial_trust)?;
        corroborate_core::error::check_probability("voteless prior", self.voteless_prior)?;
        self.iteration.validate()
    }
}

/// `2-Estimates` corroborator. See the module-level documentation.
#[derive(Debug, Clone, Default)]
pub struct TwoEstimates {
    config: TwoEstimatesConfig,
}

impl TwoEstimates {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: TwoEstimatesConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TwoEstimatesConfig {
        &self.config
    }

    /// [`Corroborator::corroborate`] with telemetry: every fixpoint
    /// iteration emits an [`IterationRecord`] carrying the trust residual
    /// the convergence test thresholds, plus iteration counters and span
    /// timings.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn corroborate_observed<O: Observer>(
        &self,
        dataset: &Dataset,
        obs: &O,
    ) -> Result<CorroborationResult, CoreError> {
        self.config.validate()?;
        let cfg = &self.config;
        let mut trust = TrustSnapshot::uniform(dataset.n_sources(), cfg.initial_trust)?;
        let mut probs = vec![cfg.voteless_prior; dataset.n_facts()];
        let mut rounds = 0;

        for _ in 0..cfg.iteration.max_iterations {
            rounds += 1;
            let residual = traced(obs, Span::Iteration, (rounds - 1) as u64, || {
                score_facts(dataset, &trust, cfg.voteless_prior, &mut probs);
                cfg.normalization.apply(&mut probs);
                let previous = trust.clone();
                update_trust(dataset, &probs, cfg.initial_trust, &mut trust);
                trust.max_abs_diff(&previous)
            });
            if O::ENABLED && OBS_EMIT {
                obs.add(Counter::Iterations, 1);
                obs.iteration(&IterationRecord { iteration: rounds - 1, residual });
            }
            if cfg.iteration.converged(residual) {
                break;
            }
        }
        // Final fact probabilities from the converged trust, *without*
        // normalisation, so callers see informative scores; decisions use
        // the standard 0.5 threshold.
        score_facts(dataset, &trust, cfg.voteless_prior, &mut probs);
        CorroborationResult::new(probs, trust, None, rounds)
    }
}

/// One fact-scoring pass: Corrob under `trust`, writing into `probs`.
fn score_facts(dataset: &Dataset, trust: &TrustSnapshot, prior: f64, probs: &mut [f64]) {
    for f in dataset.facts() {
        probs[f.index()] = corrob_probability_or(dataset.votes().votes_on(f), trust, prior);
    }
}

/// One trust-update pass: average per-vote correctness under `probs`.
/// Silent sources keep `fallback`.
fn update_trust(dataset: &Dataset, probs: &[f64], fallback: f64, trust: &mut TrustSnapshot) {
    for s in dataset.sources() {
        let votes = dataset.votes().votes_by(s);
        if votes.is_empty() {
            trust.set(s, fallback);
            continue;
        }
        let sum: f64 = votes
            .iter()
            .map(|fv| {
                let p = probs[fv.fact.index()];
                match fv.vote {
                    Vote::True => p,
                    Vote::False => 1.0 - p,
                }
            })
            .sum();
        trust.set(s, sum / votes.len() as f64);
    }
}

impl Corroborator for TwoEstimates {
    fn name(&self) -> &str {
        "TwoEstimate"
    }

    fn corroborate(&self, dataset: &Dataset) -> Result<CorroborationResult, CoreError> {
        self.corroborate_observed(dataset, &NOOP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corroborate_datagen::motivating::motivating_example;

    #[test]
    fn motivating_example_reproduces_section_2_1() {
        let ds = motivating_example();
        let r = TwoEstimates::default().corroborate(&ds).unwrap();
        // "A direct application of the TwoEstimate algorithm on the
        // motivating example yields a result of true for all the
        // restaurants except for r12" ...
        for f in ds.facts() {
            let expected = ds.fact_name(f) != "r12";
            assert_eq!(r.decisions().label(f).as_bool(), expected, "{}", ds.fact_name(f));
        }
        // ... "and a trust score of {1, 1, 0.8, 0.9, 1}".
        let expected_trust = [1.0, 1.0, 0.8, 0.9, 1.0];
        for (i, &e) in expected_trust.iter().enumerate() {
            let got = r.trust().trust(SourceId::new(i));
            assert!((got - e).abs() < 1e-9, "s{}: {} != {}", i + 1, got, e);
        }
        // Table 2 row: precision 0.64, recall 1, accuracy 0.67.
        let m = r.confusion(&ds).unwrap();
        assert!((m.precision() - 7.0 / 11.0).abs() < 1e-9);
        assert_eq!(m.recall(), 1.0);
        assert!((m.accuracy() - 8.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn affirmative_only_data_collapses_to_all_true_perfect_trust() {
        // §4.2's analysis: with only T votes, every fact is true and every
        // source gets trust 1 under rounding normalisation.
        let mut b = DatasetBuilder::new();
        let sources: Vec<_> = (0..3).map(|i| b.add_source(format!("s{i}"))).collect();
        for i in 0..20 {
            let f = b.add_fact(format!("f{i}"));
            b.cast(sources[i % 3], f, Vote::True).unwrap();
            b.cast(sources[(i + 1) % 3], f, Vote::True).unwrap();
        }
        let ds = b.build().unwrap();
        let r = TwoEstimates::default().corroborate(&ds).unwrap();
        assert!(r.decisions().labels().iter().all(|l| l.as_bool()));
        for s in ds.sources() {
            assert_eq!(r.trust().trust(s), 1.0);
        }
    }

    #[test]
    fn strong_disagreement_flips_minority_source() {
        // One source contradicts three good sources on every fact: it must
        // end with low trust and the facts follow the majority.
        let mut b = DatasetBuilder::new();
        let good: Vec<_> = (0..3).map(|i| b.add_source(format!("g{i}"))).collect();
        let bad = b.add_source("bad");
        for i in 0..10 {
            let f = b.add_fact(format!("f{i}"));
            for &g in &good {
                b.cast(g, f, Vote::True).unwrap();
            }
            b.cast(bad, f, Vote::False).unwrap();
        }
        let ds = b.build().unwrap();
        let r = TwoEstimates::default().corroborate(&ds).unwrap();
        assert!(r.decisions().labels().iter().all(|l| l.as_bool()));
        assert!(r.trust().trust(bad) < 0.1);
        assert!(r.trust().trust(good[0]) > 0.9);
    }

    #[test]
    fn converges_quickly_on_small_data() {
        let ds = motivating_example();
        let r = TwoEstimates::default().corroborate(&ds).unwrap();
        assert!(r.rounds() < 10, "took {} rounds", r.rounds());
    }

    #[test]
    fn voteless_facts_take_the_prior() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("silent");
        let ds = b.build().unwrap();
        let cfg = TwoEstimatesConfig { voteless_prior: 0.2, ..Default::default() };
        let r = TwoEstimates::new(cfg).corroborate(&ds).unwrap();
        assert!((r.probabilities()[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = TwoEstimatesConfig { initial_trust: 1.5, ..Default::default() };
        let ds = motivating_example();
        assert!(TwoEstimates::new(cfg).corroborate(&ds).is_err());
    }

    #[test]
    fn linear_rescale_variant_also_separates_conflict() {
        let ds = motivating_example();
        let cfg = TwoEstimatesConfig {
            normalization: Normalization::LinearRescale,
            ..Default::default()
        };
        let r = TwoEstimates::new(cfg).corroborate(&ds).unwrap();
        // r12 (2 F votes vs 1 T) must still score lowest.
        let r12 = FactId::new(11);
        let min = r.probabilities().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((r.probability(r12) - min).abs() < 1e-9);
    }
}
