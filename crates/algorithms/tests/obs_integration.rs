//! Integration tests for the telemetry layer: counter conservation across
//! the pruning tiers, agreement between observer records and engine
//! results, and iteration records from the convergence-loop baselines.
//!
//! The whole file is gated on the `obs` feature — with emission compiled
//! out a `RecordingObserver` legitimately records nothing.

#![cfg(feature = "obs")]

use corroborate_algorithms::galland::{Cosine, ThreeEstimates, TwoEstimates};
use corroborate_algorithms::inc::{DeltaHMode, IncEstHeu, IncEstimate};
use corroborate_algorithms::obs::{Counter, RecordingObserver, Span};
use corroborate_core::prelude::*;
use corroborate_datagen::motivating::motivating_example;
use corroborate_datagen::synthetic::{generate, SyntheticConfig};

const MODES: [DeltaHMode; 3] = [DeltaHMode::SelfTerm, DeltaHMode::Equation9, DeltaHMode::Full];

fn synthetic_world() -> Dataset {
    let cfg = SyntheticConfig { n_accurate: 8, n_inaccurate: 2, n_facts: 400, eta: 0.05, seed: 7 };
    generate(&cfg).expect("synthetic generation succeeds").dataset
}

/// Every candidate a selection round considered is classified into exactly
/// one pruning tier: prescreen-killed, walk-bound-killed, early-abandoned,
/// or exact-scored. The per-round sums must conserve, in all three ΔH
/// modes (SelfTerm scores everything exactly; the pruned modes split).
#[test]
fn tier_counters_conserve_per_round_in_all_modes() {
    let ds = synthetic_world();
    for mode in MODES {
        let rec = RecordingObserver::new();
        IncEstimate::new(IncEstHeu::with_mode(mode))
            .corroborate_observed(&ds, &rec)
            .expect("corroboration succeeds");
        let rounds = rec.rounds();
        let mut selections = 0usize;
        for round in &rounds {
            let Some(sel) = &round.selection else { continue };
            selections += 1;
            let classified = sel.prescreen_killed
                + sel.walk_bound_killed
                + sel.early_abandon_killed
                + sel.exact_scored;
            assert_eq!(
                classified, sel.candidates,
                "{mode:?} round {}: {} classified of {} candidates",
                round.round, classified, sel.candidates
            );
        }
        assert!(selections > 0, "{mode:?}: no selection records emitted");
        // The global counters are the per-round tallies, summed.
        let total: u64 = rounds
            .iter()
            .filter_map(|r| r.selection.as_ref())
            .map(|s| {
                s.prescreen_killed + s.walk_bound_killed + s.early_abandon_killed + s.exact_scored
            })
            .sum();
        let counters = rec.counters();
        let global = counters.get(Counter::PrescreenKilled)
            + counters.get(Counter::WalkBoundKilled)
            + counters.get(Counter::EarlyAbandonKilled)
            + counters.get(Counter::ExactScored);
        assert_eq!(total, global, "{mode:?}: global tier counters diverge from round records");
    }
}

/// Round records agree with the engine's own accounting: one record per
/// round, counters matching, evaluated sums matching, and the entropy
/// trajectory stitching together (round i's `entropy_after` is round
/// i+1's `entropy_before` — nothing moves between rounds).
#[test]
fn round_records_match_engine_result() {
    let ds = synthetic_world();
    let rec = RecordingObserver::new();
    let result = IncEstimate::new(IncEstHeu::with_mode(DeltaHMode::Equation9))
        .corroborate_observed(&ds, &rec)
        .expect("corroboration succeeds");
    let rounds = rec.rounds();
    assert_eq!(rounds.len(), result.rounds());
    assert_eq!(rec.counters().get(Counter::Rounds), result.rounds() as u64);
    let evaluated: usize = rounds.iter().map(|r| r.evaluated).sum();
    assert_eq!(evaluated, ds.n_facts());
    assert_eq!(rec.counters().get(Counter::FactsEvaluated), ds.n_facts() as u64);
    for (i, round) in rounds.iter().enumerate() {
        assert_eq!(round.round, i);
        assert!(round.entropy_before.is_finite() && round.entropy_after.is_finite());
    }
    for pair in rounds.windows(2) {
        assert_eq!(
            pair[0].entropy_after.to_bits(),
            pair[1].entropy_before.to_bits(),
            "entropy trajectory must stitch between rounds {} and {}",
            pair[0].round,
            pair[1].round
        );
    }
    // The last round retires the final groups; nothing remains.
    assert_eq!(rounds.last().expect("at least one round").remaining, 0);
}

/// The cache telemetry moves: incremental refreshes, group recomputations,
/// and postings compaction all fire on a non-trivial run, and the engine
/// spans record wall-clock for every round.
#[test]
fn cache_and_span_telemetry_is_populated() {
    let ds = synthetic_world();
    let rec = RecordingObserver::new();
    let result = IncEstimate::new(IncEstHeu::default())
        .corroborate_observed(&ds, &rec)
        .expect("corroboration succeeds");
    let counters = rec.counters();
    assert!(counters.get(Counter::CacheRefreshes) > 0, "no incremental cache refreshes recorded");
    assert!(counters.get(Counter::GroupsRecomputed) > 0, "no group recomputations recorded");
    assert!(counters.get(Counter::PostingsCompacted) > 0, "no postings compaction recorded");
    assert_eq!(rec.span_histogram(Span::Select).count(), result.rounds() as u64);
    assert_eq!(rec.span_histogram(Span::Evaluate).count(), result.rounds() as u64);
    assert!(rec.span_histogram(Span::CacheRefresh).count() > 0);
    assert_eq!(rec.span_histogram(Span::Iteration).count(), 0, "inc engine has no fixpoint span");
}

/// The convergence-loop baselines emit one IterationRecord per fixpoint
/// iteration, numbered sequentially, with finite residuals, matching the
/// result's round count and the Iterations counter.
#[test]
fn galland_loops_emit_iteration_records() {
    fn check(name: &str, rec: &RecordingObserver, rounds: usize) {
        let iterations = rec.iterations();
        assert_eq!(iterations.len(), rounds, "{name}: one record per iteration");
        assert_eq!(rec.counters().get(Counter::Iterations), rounds as u64, "{name}");
        for (i, it) in iterations.iter().enumerate() {
            assert_eq!(it.iteration, i, "{name}: iterations numbered sequentially");
            assert!(it.residual.is_finite(), "{name}: residual must be finite");
        }
        assert_eq!(rec.span_histogram(Span::Iteration).count(), rounds as u64, "{name}");
        assert_eq!(rec.rounds().len(), 0, "{name}: convergence loops emit no RoundRecords");
    }

    let ds = motivating_example();
    let rec = RecordingObserver::new();
    let rounds = TwoEstimates::default().corroborate_observed(&ds, &rec).unwrap().rounds();
    check("TwoEstimates", &rec, rounds);
    let rec = RecordingObserver::new();
    let rounds = ThreeEstimates::default().corroborate_observed(&ds, &rec).unwrap().rounds();
    check("ThreeEstimates", &rec, rounds);
    let rec = RecordingObserver::new();
    let rounds = Cosine::default().corroborate_observed(&ds, &rec).unwrap().rounds();
    check("Cosine", &rec, rounds);
}

/// Attaching an observer must not change the computation: bit-identical
/// probabilities, trust, decisions, and round counts against the plain
/// `corroborate` (noop observer) path.
#[test]
fn recording_observer_is_computation_transparent() {
    let ds = synthetic_world();
    for mode in MODES {
        let alg = IncEstimate::new(IncEstHeu::with_mode(mode));
        let plain = alg.corroborate(&ds).expect("plain run");
        let rec = RecordingObserver::new();
        let observed = alg.corroborate_observed(&ds, &rec).expect("observed run");
        assert_eq!(plain.rounds(), observed.rounds(), "{mode:?}");
        for (a, b) in plain.probabilities().iter().zip(observed.probabilities()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}: probabilities diverge");
        }
        for (a, b) in plain.trust().values().iter().zip(observed.trust().values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}: trust diverges");
        }
        assert_eq!(plain.decisions().labels(), observed.decisions().labels(), "{mode:?}");
    }
}
