//! The CSV interchange against real generator output: every datagen world
//! must survive serialize→parse with its votes, names, and ground truth
//! intact, and reparse to a byte-stable text form.

use std::collections::BTreeSet;

use corroborate_core::io::{
    dataset_from_csv, dataset_from_csv_full, sources_to_csv, truth_to_csv, votes_to_csv,
};
use corroborate_core::prelude::*;
use corroborate_datagen::{motivating, restaurant, synthetic};

fn triples(ds: &Dataset) -> BTreeSet<(String, String, char)> {
    let mut out = BTreeSet::new();
    for f in ds.facts() {
        for sv in ds.votes().votes_on(f) {
            out.insert((
                ds.source_name(sv.source).to_string(),
                ds.fact_name(f).to_string(),
                sv.vote.symbol(),
            ));
        }
    }
    out
}

fn assert_roundtrip(ds: &Dataset) {
    let votes = votes_to_csv(ds);
    let truth = truth_to_csv(ds).expect("datagen worlds carry ground truth");
    let back = dataset_from_csv(&votes, Some(&truth)).expect("reparse generator output");
    assert_eq!(back.n_sources(), ds.n_sources());
    assert_eq!(back.n_facts(), ds.n_facts());
    assert_eq!(triples(ds), triples(&back), "vote triples changed");
    let t = ds.ground_truth().unwrap();
    let tb = back.ground_truth().unwrap();
    for f in ds.facts() {
        let name = ds.fact_name(f);
        let fb = back.facts().find(|&g| back.fact_name(g) == name).unwrap();
        assert_eq!(t.label(f), tb.label(fb), "label flipped for {name}");
    }
    // One parse normalises ids to first-appearance order; from there the
    // text form is a fixpoint.
    let normalised = votes_to_csv(&back);
    let again = dataset_from_csv(&normalised, None).expect("reparse normalised output");
    assert_eq!(votes_to_csv(&again), normalised);
}

#[test]
fn motivating_example_round_trips() {
    assert_roundtrip(&motivating::motivating_example());
}

#[test]
fn synthetic_world_round_trips() {
    let config = synthetic::SyntheticConfig {
        n_accurate: 5,
        n_inaccurate: 2,
        n_facts: 300,
        eta: 0.05,
        seed: 9,
    };
    let world = synthetic::generate(&config).unwrap();
    assert_roundtrip(&world.dataset);
}

#[test]
fn projected_world_keeps_voteless_sources_via_the_roster() {
    // Projecting to a golden subset keeps every source; some end up with
    // zero votes on the subset. The roster sidecar must carry them across
    // the round trip (PR 3 documented this as a representability gap).
    let config = restaurant::RestaurantConfig {
        n_listings: 400,
        golden_size: 12,
        golden_true: 7,
        calibration_iters: 2,
        seed: 11,
    };
    let world = restaurant::generate(&config).unwrap();
    let sub = world.dataset.project_facts(&world.golden).unwrap();
    let voteless = sub.sources().filter(|&s| sub.votes().votes_by(s).is_empty()).count();
    assert!(voteless > 0, "tiny golden subset should leave some sources voteless");

    let votes = votes_to_csv(&sub);
    let truth = truth_to_csv(&sub).unwrap();
    let roster = sources_to_csv(&sub);
    let back = dataset_from_csv_full(&votes, Some(&truth), Some(&roster)).unwrap();
    assert_eq!(back.n_sources(), sub.n_sources());
    assert_eq!(back.n_facts(), sub.n_facts());
    assert_eq!(triples(&sub), triples(&back));
    assert_eq!(sources_to_csv(&back), roster);

    // The votes-only parse demonstrably loses them.
    let narrow = dataset_from_csv(&votes, Some(&truth)).unwrap();
    assert_eq!(narrow.n_sources(), sub.n_sources() - voteless);
}

#[test]
fn restaurant_world_round_trips_including_sparse_listings() {
    let config = restaurant::RestaurantConfig {
        n_listings: 500,
        golden_size: 60,
        golden_true: 34,
        calibration_iters: 2,
        seed: 5,
    };
    let world = restaurant::generate(&config).unwrap();
    // The crawl model leaves some listings thinly voted — make sure the
    // round trip is tested against genuinely sparse rows.
    let thin =
        world.dataset.facts().filter(|&f| world.dataset.votes().votes_on(f).len() <= 1).count();
    assert!(thin > 0, "expected some sparse listings in the restaurant world");
    assert_roundtrip(&world.dataset);
}
