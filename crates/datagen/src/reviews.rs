//! Per-listing review metadata — the signal behind the paper's *failed
//! first attempt* (§6.2.1): "we used a variety of meta data (number of
//! reviews, average interval of review time stamp, length since last
//! review, etc) … and tested using a SVM classifier. However, the
//! classifier resulted in a less-than-satisfactory accuracy (< 0.7)".
//!
//! This module simulates that metadata so the experiment can be re-run:
//! review activity correlates with a restaurant being open (closed places
//! stop accumulating reviews), but the correlation is *noisy* — obscure
//! open restaurants also go quiet for months, and freshly-closed ones
//! still look active — which is precisely why the authors abandoned the
//! classifier route and built corroboration instead.

use corroborate_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Review metadata of one listing, as a crawler would aggregate it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReviewStats {
    /// Total number of reviews across sources.
    pub n_reviews: u32,
    /// Days since the most recent review at crawl time.
    pub days_since_last: f64,
    /// Mean days between consecutive reviews.
    pub avg_interval_days: f64,
    /// Mean star rating (1–5).
    pub mean_rating: f64,
}

impl ReviewStats {
    /// Flattens into the feature vector used by the classifiers (log
    /// count, recency, cadence, rating).
    pub fn features(&self) -> Vec<f64> {
        vec![
            f64::from(self.n_reviews).ln_1p(),
            self.days_since_last.ln_1p(),
            self.avg_interval_days.ln_1p(),
            self.mean_rating,
        ]
    }
}

/// Configuration of the review simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReviewConfig {
    /// Mean reviews for a popular open restaurant.
    pub mean_reviews_open: f64,
    /// Fraction of *open* restaurants that are obscure (review patterns
    /// indistinguishable from closed ones) — the noise floor that caps
    /// classifier accuracy, per the paper's observation.
    pub obscure_rate: f64,
    /// Fraction of *closed* restaurants that closed recently enough to
    /// still look active.
    pub freshly_closed_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReviewConfig {
    fn default() -> Self {
        Self { mean_reviews_open: 60.0, obscure_rate: 0.38, freshly_closed_rate: 0.35, seed: 7 }
    }
}

/// Generates review metadata for every fact of `dataset` (which must
/// carry ground truth: open = true).
///
/// # Errors
/// Requires ground truth on the dataset.
pub fn generate_reviews(
    dataset: &Dataset,
    config: &ReviewConfig,
) -> Result<Vec<ReviewStats>, CoreError> {
    let truth = dataset.require_ground_truth()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(dataset.n_facts());
    for f in dataset.facts() {
        let open = truth.label(f).as_bool();
        // Does this listing *look* like its class, or like the other one?
        let looks_active = if open {
            !rng.gen_bool(config.obscure_rate)
        } else {
            rng.gen_bool(config.freshly_closed_rate)
        };
        let exp = |rng: &mut StdRng, mean: f64| -> f64 {
            -mean * (1.0 - rng.gen_range(0.0..1.0_f64)).ln()
        };
        let (n_reviews, days_since_last, avg_interval) = if looks_active {
            let n = 3.0 + exp(&mut rng, config.mean_reviews_open);
            (n, exp(&mut rng, 25.0), exp(&mut rng, 18.0) + 2.0)
        } else {
            let n = 1.0 + exp(&mut rng, 10.0);
            (n, 120.0 + exp(&mut rng, 400.0), exp(&mut rng, 90.0) + 10.0)
        };
        out.push(ReviewStats {
            n_reviews: n_reviews as u32,
            days_since_last,
            avg_interval_days: avg_interval,
            mean_rating: (3.6 + rng.gen_range(-1.2..1.2_f64)).clamp(1.0, 5.0),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restaurant::{generate, RestaurantConfig};

    #[test]
    fn reviews_cover_every_listing_deterministically() {
        let world = generate(&RestaurantConfig::small(3)).unwrap();
        let a = generate_reviews(&world.dataset, &ReviewConfig::default()).unwrap();
        let b = generate_reviews(&world.dataset, &ReviewConfig::default()).unwrap();
        assert_eq!(a.len(), world.dataset.n_facts());
        assert_eq!(a, b);
    }

    #[test]
    fn open_listings_are_more_active_on_average_but_overlap() {
        let world = generate(&RestaurantConfig::small(3)).unwrap();
        let reviews = generate_reviews(&world.dataset, &ReviewConfig::default()).unwrap();
        let truth = world.dataset.ground_truth().unwrap();
        let median_recency = |want_open: bool| -> f64 {
            let mut vals: Vec<f64> = world
                .dataset
                .facts()
                .filter(|&f| truth.label(f).as_bool() == want_open)
                .map(|f| reviews[f.index()].days_since_last)
                .collect();
            vals.sort_by(f64::total_cmp);
            vals[vals.len() / 2]
        };
        let open = median_recency(true);
        let closed = median_recency(false);
        // The signal exists (typical closed listing is much staler) ...
        assert!(closed > 2.0 * open, "closed {closed:.0}d vs open {open:.0}d");
        // ... but a large minority of each class crosses the other's
        // typical range (the noise the paper ran into).
        let stale_open = world
            .dataset
            .facts()
            .filter(|&f| truth.label(f).as_bool())
            .filter(|&f| reviews[f.index()].days_since_last > 120.0)
            .count() as f64;
        let n_open = truth.n_true() as f64;
        assert!(stale_open / n_open > 0.2, "{}", stale_open / n_open);
    }

    #[test]
    fn features_are_finite_and_fixed_width() {
        let world = generate(&RestaurantConfig::small(5)).unwrap();
        let reviews = generate_reviews(&world.dataset, &ReviewConfig::default()).unwrap();
        for r in &reviews {
            let f = r.features();
            assert_eq!(f.len(), 4);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn requires_ground_truth() {
        let mut b = DatasetBuilder::new();
        b.add_source("s");
        b.add_fact("unlabelled");
        let ds = b.build().unwrap();
        assert!(generate_reviews(&ds, &ReviewConfig::default()).is_err());
    }
}
