//! The paper's motivating example: Table 1 — 5 sources, 12 restaurants.
//!
//! This is the exact instance §2 uses to demonstrate the limitations of
//! TwoEstimate and BayesEstimate and to walk through the multi-round
//! strategy. The tests of `corroborate-algorithms` reproduce the paper's
//! Table 2 numbers on it.

use corroborate_core::prelude::*;

/// Builds the Table 1 dataset.
///
/// Sources are `s1..s5` (ids 0..4); facts `r1..r12` (ids 0..11) with the
/// ground truth of the table's last column. Votes:
///
/// ```text
///        s1 s2 s3 s4 s5   truth
/// r1      -  T  -  T  -   true
/// r2      T  T  -  T  T   true
/// r3      T  -  T  -  T   true
/// r4      -  -  -  T  T   false
/// r5      T  -  -  T  -   false
/// r6      -  -  F  T  -   false
/// r7      -  T  -  T  T   true
/// r8      -  T  -  T  T   true
/// r9      -  -  T  -  T   true
/// r10     -  -  -  T  T   false
/// r11     -  -  T  T  T   true
/// r12     -  F  F  T  -   false
/// ```
pub fn motivating_example() -> Dataset {
    let rows: &[(&str, [i8; 5], bool)] = &[
        ("r1", [0, 1, 0, 1, 0], true),
        ("r2", [1, 1, 0, 1, 1], true),
        ("r3", [1, 0, 1, 0, 1], true),
        ("r4", [0, 0, 0, 1, 1], false),
        ("r5", [1, 0, 0, 1, 0], false),
        ("r6", [0, 0, -1, 1, 0], false),
        ("r7", [0, 1, 0, 1, 1], true),
        ("r8", [0, 1, 0, 1, 1], true),
        ("r9", [0, 0, 1, 0, 1], true),
        ("r10", [0, 0, 0, 1, 1], false),
        ("r11", [0, 0, 1, 1, 1], true),
        ("r12", [0, -1, -1, 1, 0], false),
    ];
    let mut b = DatasetBuilder::new();
    let sources: Vec<SourceId> = (1..=5).map(|i| b.add_source(format!("s{i}"))).collect();
    for (name, votes, truth) in rows {
        let f = b.add_fact_with_truth(*name, Label::from_bool(*truth));
        for (si, &v) in votes.iter().enumerate() {
            match v {
                1 => b.cast(sources[si], f, Vote::True).unwrap(),
                -1 => b.cast(sources[si], f, Vote::False).unwrap(),
                _ => {}
            }
        }
    }
    b.build().expect("static table is well-formed")
}

/// The global trust (vote accuracy against ground truth) of the five
/// sources.
///
/// Note: §2 of the paper states `{1, 0.8, 1, 0.5, 0.625}`, but those values
/// are inconsistent with Table 1 under any natural definition (s3 and s4
/// match vote accuracy; s1, s2 and s5 do not). The §2.3 walkthrough's final
/// trust scores (`s1 = 0.67 = 2/3`) *are* consistent with plain vote
/// accuracy, so this library standardises on that definition; these are the
/// resulting values.
pub const MOTIVATING_GLOBAL_TRUST: [f64; 5] = [2.0 / 3.0, 1.0, 1.0, 0.5, 0.75];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_table_1() {
        let ds = motivating_example();
        assert_eq!(ds.n_sources(), 5);
        assert_eq!(ds.n_facts(), 12);
        assert_eq!(ds.ground_truth().unwrap().n_true(), 7);
        assert_eq!(ds.ground_truth().unwrap().n_false(), 5);
    }

    #[test]
    fn only_r6_and_r12_have_f_votes() {
        let ds = motivating_example();
        let f_voted: Vec<&str> = ds
            .facts()
            .filter(|&f| !ds.votes().is_affirmative_only(f))
            .map(|f| ds.fact_name(f))
            .collect();
        assert_eq!(f_voted, vec!["r6", "r12"]);
        assert_eq!(ds.votes().affirmative_only_count(), 10);
    }

    #[test]
    fn stated_global_trust_matches_ground_truth_accuracy() {
        // §2: "the global trust scores for all the sources are
        // {1, 0.8, 1, 0.5, 0.625}".
        let ds = motivating_example();
        let acc = ds.source_accuracies().unwrap();
        for (i, expected) in MOTIVATING_GLOBAL_TRUST.iter().enumerate() {
            let got = acc[i].unwrap();
            assert!(
                (got - expected).abs() < 1e-9,
                "s{}: accuracy {} != paper's {}",
                i + 1,
                got,
                expected
            );
        }
    }

    #[test]
    fn spot_check_votes() {
        let ds = motivating_example();
        let m = ds.votes();
        // r12 row: - F F T -
        let r12 = FactId::new(11);
        assert_eq!(m.vote(SourceId::new(0), r12), None);
        assert_eq!(m.vote(SourceId::new(1), r12), Some(Vote::False));
        assert_eq!(m.vote(SourceId::new(2), r12), Some(Vote::False));
        assert_eq!(m.vote(SourceId::new(3), r12), Some(Vote::True));
        assert_eq!(m.vote(SourceId::new(4), r12), None);
        assert_eq!(m.tally(r12), (1, 2));
        // s4 casts the most votes (10).
        assert_eq!(m.votes_by(SourceId::new(3)).len(), 10);
    }
}
