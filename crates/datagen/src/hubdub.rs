//! A Hubdub-like multi-answer dataset (paper §6.2.6, Table 7).
//!
//! The paper re-uses Galland et al.'s snapshot of settled questions from
//! hubdub.com: *830 facts from 471 users on 357 questions*. The site shut
//! down in 2012 and the snapshot is not available, so this module
//! generates a workload with the same shape:
//!
//! - 357 questions, each with 2–4 mutually-exclusive candidate answers
//!   (830 candidates in total — facts in the binary view);
//! - 471 users whose participation follows a heavy tail (a few prolific
//!   bettors, many one-shot users) and whose reliability is uniform in a
//!   configurable band;
//! - each participating user bets on (casts a `T` vote for) exactly one
//!   candidate per question: the settled answer with probability equal to
//!   the user's reliability, otherwise a uniformly random wrong candidate.
//!
//! The generator is calibrated so the baselines land in the paper's error
//! range (Table 7 reports 250–330 errors out of 830 facts, i.e. majority
//! vote is wrong on roughly 40% of questions — Hubdub bettors were not
//! reliable oracles).

use corroborate_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the Hubdub-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubdubConfig {
    /// Number of settled questions (357 in the snapshot).
    pub n_questions: usize,
    /// Number of users (471 in the snapshot).
    pub n_users: usize,
    /// Total candidate answers across questions (830 in the snapshot);
    /// the generator distributes 2–4 candidates per question to match.
    pub n_candidates: usize,
    /// Reliability band: each user answers correctly with probability
    /// uniform in this range. The default `[0.35, 0.75]` lands majority
    /// vote at the paper's ~35% fact-error rate.
    pub reliability: (f64, f64),
    /// Mean number of bets per question (heavy-tailed across users).
    pub mean_bets_per_question: f64,
    /// Number of question categories (sports, politics, …). A user's
    /// reliability varies by ± [`HubdubConfig::category_spread`] across
    /// categories — hubdub bettors were knowledgeable on some topics and
    /// guessing on others, the heterogeneity that motivates multi-value
    /// trust (§1, §7 citing Li et al.).
    pub n_categories: usize,
    /// Half-width of the per-category reliability perturbation.
    pub category_spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HubdubConfig {
    fn default() -> Self {
        Self {
            n_questions: 357,
            n_users: 471,
            n_candidates: 830,
            reliability: (0.35, 0.75),
            mean_bets_per_question: 6.0,
            n_categories: 8,
            category_spread: 0.25,
            seed: 830,
        }
    }
}

impl HubdubConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.n_questions == 0 || self.n_users == 0 {
            return Err(CoreError::InvalidConfig {
                message: "need at least one question and one user".into(),
            });
        }
        if self.n_candidates < 2 * self.n_questions {
            return Err(CoreError::InvalidConfig {
                message: "need at least two candidates per question".into(),
            });
        }
        if self.n_candidates > 4 * self.n_questions {
            return Err(CoreError::InvalidConfig {
                message: "more than four candidates per question not supported".into(),
            });
        }
        let (lo, hi) = self.reliability;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(CoreError::InvalidConfig {
                message: format!("invalid reliability band ({lo}, {hi})"),
            });
        }
        if self.mean_bets_per_question <= 0.0 || self.mean_bets_per_question.is_nan() {
            return Err(CoreError::InvalidConfig {
                message: "mean_bets_per_question must be positive".into(),
            });
        }
        if self.n_categories == 0 {
            return Err(CoreError::InvalidConfig { message: "need at least one category".into() });
        }
        if !(0.0..=0.5).contains(&self.category_spread) {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "category_spread must be in [0, 0.5], got {}",
                    self.category_spread
                ),
            });
        }
        Ok(())
    }
}

/// The generated Hubdub-like world.
#[derive(Debug, Clone)]
pub struct HubdubWorld {
    /// Multi-answer dataset: facts are candidates, sources are users,
    /// ground truth marks the settled answer of each question.
    pub dataset: Dataset,
    /// Designed reliability per user.
    pub reliability: Vec<f64>,
}

/// Generates the Hubdub-like world. Deterministic given the config.
pub fn generate(config: &HubdubConfig) -> Result<HubdubWorld, CoreError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DatasetBuilder::new();

    let users: Vec<SourceId> =
        (0..config.n_users).map(|i| b.add_source(format!("user{i}"))).collect();
    let reliability: Vec<f64> = (0..config.n_users)
        .map(|_| rng.gen_range(config.reliability.0..=config.reliability.1))
        .collect();
    // Per-user, per-category reliability: base ± a topic perturbation.
    let s = config.category_spread;
    let category_reliability: Vec<Vec<f64>> = (0..config.n_users)
        .map(|u| {
            (0..config.n_categories)
                .map(|_| (reliability[u] + rng.gen_range(-s..=s)).clamp(0.02, 0.98))
                .collect()
        })
        .collect();
    // Heavy-tailed participation propensity: weight ∝ 1 / rank-ish.
    let propensity: Vec<f64> = (0..config.n_users).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let propensity_sum: f64 = propensity.iter().sum();

    // Distribute candidates: start with 2 per question, spread the rest.
    let mut candidates_of = vec![2usize; config.n_questions];
    let mut extra = config.n_candidates - 2 * config.n_questions;
    let mut qi = 0;
    while extra > 0 {
        if candidates_of[qi % config.n_questions] < 4 {
            candidates_of[qi % config.n_questions] += 1;
            extra -= 1;
        }
        qi += 1;
    }

    // Facts + question structure + settled answers.
    let mut assignments = Vec::with_capacity(config.n_candidates);
    let mut question_facts: Vec<Vec<FactId>> = Vec::with_capacity(config.n_questions);
    let mut settled: Vec<usize> = Vec::with_capacity(config.n_questions);
    for (q, &k) in candidates_of.iter().enumerate() {
        let answer = rng.gen_range(0..k);
        settled.push(answer);
        let mut facts = Vec::with_capacity(k);
        for c in 0..k {
            let f = b.add_fact_with_truth(format!("q{q}c{c}"), Label::from_bool(c == answer));
            assignments.push(QuestionId::new(q));
            facts.push(f);
        }
        question_facts.push(facts);
    }
    b.set_question_assignments(assignments);

    // Bets: per question, sample a bettor count (geometric-ish around the
    // mean), draw bettors by propensity without replacement, and let each
    // bet on the settled answer with probability equal to their
    // reliability (otherwise a uniform wrong candidate).
    for (q, facts) in question_facts.iter().enumerate() {
        let k = facts.len();
        let answer = settled[q];
        let category = q % config.n_categories;
        let mean = config.mean_bets_per_question;
        let n_bets = 1 + (-(1.0 - rng.gen_range(0.0..1.0_f64)).ln() * (mean - 1.0)) as usize;
        let n_bets = n_bets.min(config.n_users);
        let mut chosen = std::collections::HashSet::new();
        let mut guard = 0;
        while chosen.len() < n_bets && guard < 50 * n_bets {
            guard += 1;
            let mut x = rng.gen_range(0.0..propensity_sum);
            let mut pick = 0;
            for (i, &w) in propensity.iter().enumerate() {
                if x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            chosen.insert(pick);
        }
        let mut bettors: Vec<usize> = chosen.into_iter().collect();
        bettors.sort_unstable(); // deterministic iteration order
        for u in bettors {
            let correct = rng.gen_bool(category_reliability[u][category]);
            let bet = if correct || k == 1 {
                answer
            } else {
                let mut c = rng.gen_range(0..k - 1);
                if c >= answer {
                    c += 1;
                }
                c
            };
            b.cast(users[u], facts[bet], Vote::True)?;
        }
    }

    Ok(HubdubWorld { dataset: b.build()?, reliability })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> HubdubWorld {
        generate(&HubdubConfig::default()).unwrap()
    }

    #[test]
    fn shape_matches_the_snapshot() {
        let w = world();
        assert_eq!(w.dataset.n_facts(), 830);
        assert_eq!(w.dataset.n_sources(), 471);
        let q = w.dataset.questions().unwrap();
        assert_eq!(q.n_questions(), 357);
        assert!(q.max_candidates() <= 4);
        // Exactly one settled answer per question.
        let truth = w.dataset.ground_truth().unwrap();
        for question in q.questions() {
            let winners =
                q.candidates(question).iter().filter(|&&f| truth.label(f).as_bool()).count();
            assert_eq!(winners, 1, "{question}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&HubdubConfig::default()).unwrap();
        let b = generate(&HubdubConfig::default()).unwrap();
        assert_eq!(a.dataset.votes().n_votes(), b.dataset.votes().n_votes());
    }

    #[test]
    fn every_question_has_at_least_one_bet() {
        let w = world();
        let q = w.dataset.questions().unwrap();
        for question in q.questions() {
            let bets: usize =
                q.candidates(question).iter().map(|&f| w.dataset.votes().votes_on(f).len()).sum();
            assert!(bets >= 1, "{question}");
        }
    }

    #[test]
    fn all_votes_are_affirmative_bets() {
        let w = world();
        for f in w.dataset.facts() {
            for sv in w.dataset.votes().votes_on(f) {
                assert_eq!(sv.vote, Vote::True);
            }
        }
    }

    #[test]
    fn participation_is_heavy_tailed() {
        let w = world();
        let mut counts: Vec<usize> =
            w.dataset.sources().map(|s| w.dataset.votes().votes_by(s).len()).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The top 10% of users cast a disproportionate share of votes.
        let total: usize = counts.iter().sum();
        let top: usize = counts[..counts.len() / 10].iter().sum();
        assert!(top as f64 > 0.4 * total as f64, "top decile cast {top} of {total}");
    }

    #[test]
    fn majority_vote_errs_on_a_large_minority_of_questions() {
        // Table 7's premise: Voting commits ~290 errors on 830 facts.
        use corroborate_core::metrics::ConfusionMatrix;
        let w = world();
        let truth = w.dataset.ground_truth().unwrap();
        // Per-question majority.
        let q = w.dataset.questions().unwrap();
        let mut predicted = vec![false; w.dataset.n_facts()];
        for question in q.questions() {
            let winner = q
                .candidates(question)
                .iter()
                .max_by_key(|&&f| w.dataset.votes().votes_on(f).len())
                .copied()
                .unwrap();
            predicted[winner.index()] = true;
        }
        let pred = TruthAssignment::from_bools(&predicted);
        let m = ConfusionMatrix::from_assignments(&pred, truth).unwrap();
        let errors = m.errors();
        assert!(
            (150..450).contains(&errors),
            "majority-vote errors {errors} outside the paper's ballpark"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = HubdubConfig { n_candidates: 100, ..Default::default() }; // < 2/question
        assert!(generate(&c).is_err());
        let c = HubdubConfig { reliability: (0.9, 0.1), ..Default::default() };
        assert!(generate(&c).is_err());
        let c = HubdubConfig { mean_bets_per_question: 0.0, ..Default::default() };
        assert!(generate(&c).is_err());
    }
}
