//! The restaurant-listing world (paper §6.2) — a calibrated simulation of
//! the NYC crawl behind Tables 3–6 and Figure 2.
//!
//! The paper's dataset (36,916 deduplicated listings crawled in Feb 2012
//! from six sources, with a 601-listing hand-checked golden set) is no
//! longer available; this module synthesises a world matching its
//! *sufficient statistics*, which is all the vote-matrix algorithms can
//! see:
//!
//! - six sources with Table 3's coverage
//!   (`{0.59, 0.24, 0.20, 0.07, 0.50, 0.35}`) and golden-set accuracy
//!   (`{0.59, 0.78, 0.93, 0.96, 0.62, 0.84}`);
//! - `F` votes from exactly three sources with the paper's counts
//!   (Foursquare 10, Menupages 256, Yelp 425; ≈654 listings with `F`
//!   votes, <2% of the data);
//! - pairwise source overlap in Table 3's range, induced by a latent
//!   per-listing *popularity* factor (popular restaurants are listed
//!   everywhere);
//! - a golden set of 601 listings with 340 true / 261 false.
//!
//! ## Generative model
//!
//! Each listing is true with probability `340/601 ≈ 0.566` (the golden
//! set's class balance). Source `s` lists a *true* restaurant with
//! probability `h_s·z_i` and erroneously lists a *false* one with
//! probability `w_s·z_i`, where `z_i` is the listing's popularity factor
//! (mean 1). `h_s`/`w_s` start from the closed-form solution for the
//! coverage/accuracy targets and are then refined by a measure-and-adjust
//! calibration loop, because conditioning on "at least one vote" (a
//! listing *is* a crawled record — voteless candidates don't exist) skews
//! the naive solution.

use corroborate_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of sources in the restaurant world.
pub const N_SOURCES: usize = 6;

/// The six crawled sources, in the paper's Table 3 order.
pub const SOURCE_NAMES: [&str; N_SOURCES] =
    ["YellowPages", "Foursquare", "MenuPages", "OpenTable", "CitySearch", "Yelp"];

/// Table 3's coverage row (fraction of all listings each source carries).
pub const TARGET_COVERAGE: [f64; N_SOURCES] = [0.59, 0.24, 0.20, 0.07, 0.50, 0.35];

/// Table 3's accuracy row (vote accuracy over the golden set).
pub const TARGET_ACCURACY: [f64; N_SOURCES] = [0.59, 0.78, 0.93, 0.96, 0.62, 0.84];

/// §6.2.1's `F`-vote counts per source (only three sources ever cast `F`).
pub const TARGET_F_VOTES: [usize; N_SOURCES] = [0, 10, 256, 0, 0, 425];

/// Golden-set class balance: 340 true of 601 checked listings.
pub const GOLDEN_TRUE_FRACTION: f64 = 340.0 / 601.0;

/// Share of the golden set's *false* part drawn from F-voted listings,
/// reproducing the in-person-check skew Table 4's baseline rows imply
/// (the checkers disproportionately verified listings some source had
/// flagged CLOSED).
pub const GOLDEN_F_VOTED_SHARE: f64 = 0.30;

/// Popularity exponent for golden-set sampling (both classes): weight
/// `n_votes^power`. 1.5 lands Counting on its Table 4 row (P≈.94,
/// R≈.65) — the golden zip codes skew toward well-covered listings.
pub const GOLDEN_POPULARITY_POWER: f64 = 1.5;

/// Configuration for the restaurant-world generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestaurantConfig {
    /// Number of listings (the paper's crawl has 36,916).
    pub n_listings: usize,
    /// Golden-set size (601 in the paper).
    pub golden_size: usize,
    /// True listings in the golden set (340 in the paper).
    pub golden_true: usize,
    /// Calibration iterations for the emission rates (3 is plenty).
    pub calibration_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RestaurantConfig {
    fn default() -> Self {
        Self {
            n_listings: 36_916,
            golden_size: 601,
            golden_true: 340,
            calibration_iters: 3,
            seed: 2012, // the crawl year
        }
    }
}

impl RestaurantConfig {
    /// A scaled-down world for tests (≈1/10 of the paper's size).
    pub fn small(seed: u64) -> Self {
        Self {
            n_listings: 4_000,
            golden_size: 400,
            golden_true: 226, // keeps the golden class balance
            calibration_iters: 3,
            seed,
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.n_listings == 0 {
            return Err(CoreError::InvalidConfig { message: "need listings".into() });
        }
        if self.golden_size > self.n_listings {
            return Err(CoreError::InvalidConfig {
                message: "golden set larger than the dataset".into(),
            });
        }
        if self.golden_true > self.golden_size {
            return Err(CoreError::InvalidConfig {
                message: "golden_true exceeds golden_size".into(),
            });
        }
        Ok(())
    }
}

/// The generated restaurant world.
#[derive(Debug, Clone)]
pub struct RestaurantWorld {
    /// The full corroboration instance (ground truth attached — the
    /// algorithms never read it; evaluation uses it via the golden set).
    pub dataset: Dataset,
    /// The stratified golden subset (the paper's 601 checked listings).
    pub golden: Vec<FactId>,
    /// Calibrated `P(lists | true)` per source.
    pub hit_rate: [f64; N_SOURCES],
    /// Calibrated `P(lists | false)` per source.
    pub noise_rate: [f64; N_SOURCES],
}

impl RestaurantWorld {
    /// Realised coverage per source (compare to [`TARGET_COVERAGE`]).
    pub fn realised_coverage(&self) -> Vec<f64> {
        self.dataset.sources().map(|s| self.dataset.source_coverage(s)).collect()
    }

    /// Realised vote accuracy per source over the **golden set** (compare
    /// to [`TARGET_ACCURACY`]), mirroring how the paper measures Table 3.
    pub fn realised_golden_accuracy(&self) -> Result<Vec<f64>, CoreError> {
        let golden_ds = self.dataset.project_facts(&self.golden)?;
        Ok(golden_ds.source_accuracies()?.into_iter().map(|a| a.unwrap_or(f64::NAN)).collect())
    }

    /// Realised full-dataset vote accuracy per source.
    pub fn realised_accuracy(&self) -> Result<Vec<f64>, CoreError> {
        Ok(self.dataset.source_accuracies()?.into_iter().map(|a| a.unwrap_or(f64::NAN)).collect())
    }
}

/// Popularity spread: listings are "popular" (`z = 1 + SPREAD`) or
/// "obscure" (`z = 1 − SPREAD`) with equal probability. Lifting
/// co-listing probability reproduces Table 3's overlap being higher than
/// independence predicts — and counteracts the negative correlation the
/// ≥1-vote conditioning induces (given a listing exists, one source's
/// silence makes another's vote more likely).
const POP_SPREAD: f64 = 0.85;

const POP_VALUES: [f64; 2] = [1.0 - POP_SPREAD, 1.0 + POP_SPREAD];

fn popularity(rng: &mut StdRng) -> f64 {
    POP_VALUES[usize::from(rng.gen_bool(0.5))]
}

/// Analytic per-source statistics of the generative model under the
/// ≥1-vote conditioning: `tt` = P(T vote | kept, true), `tf` = P(T vote |
/// kept, false), `ff` = P(F vote | kept, false).
struct ModelStats {
    tt: [f64; N_SOURCES],
    tf: [f64; N_SOURCES],
    ff: [f64; N_SOURCES],
}

fn model_stats(h: &[f64; N_SOURCES], w: &[f64; N_SOURCES], f: &[f64; N_SOURCES]) -> ModelStats {
    // The popularity factor is drawn once per listing and the votes are
    // resampled *within* that factor until at least one lands, so the
    // conditioning applies per popularity level:
    // P(s votes | kept) = E_z[ q_s(z) / A(z) ].
    let mut stats = ModelStats { tt: [0.0; N_SOURCES], tf: [0.0; N_SOURCES], ff: [0.0; N_SOURCES] };
    for z in POP_VALUES {
        let silent_t: f64 = (0..N_SOURCES).map(|s| 1.0 - (h[s] * z).min(1.0)).product();
        let silent_f: f64 =
            (0..N_SOURCES).map(|s| (1.0 - f[s]) * (1.0 - (w[s] * z).min(1.0))).product();
        let keep_t = (1.0 - silent_t).max(1e-9);
        let keep_f = (1.0 - silent_f).max(1e-9);
        for s in 0..N_SOURCES {
            stats.tt[s] += 0.5 * (h[s] * z).min(1.0) / keep_t;
            stats.tf[s] += 0.5 * (1.0 - f[s]) * (w[s] * z).min(1.0) / keep_f;
            stats.ff[s] += 0.5 * f[s] / keep_f;
        }
    }
    stats
}

/// Generates the restaurant world. Deterministic given the config.
pub fn generate(config: &RestaurantConfig) -> Result<RestaurantWorld, CoreError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let p = GOLDEN_TRUE_FRACTION;

    // Closed-form initial rates ignoring the ≥1-vote conditioning:
    // coverage = p·h + (1−p)·w and accuracy = p·h / coverage.
    let mut h = [0.0; N_SOURCES];
    let mut w = [0.0; N_SOURCES];
    for s in 0..N_SOURCES {
        h[s] = (TARGET_COVERAGE[s] * TARGET_ACCURACY[s] / p).min(1.0);
        w[s] = (TARGET_COVERAGE[s] * (1.0 - TARGET_ACCURACY[s]) / (1.0 - p)).min(1.0);
    }

    // F-vote probabilities: target counts scaled to this world's size.
    let scale = config.n_listings as f64 / 36_916.0;
    let n_false_expected = (1.0 - p) * config.n_listings as f64;
    let mut f_rate = [0.0; N_SOURCES];
    for s in 0..N_SOURCES {
        f_rate[s] = (TARGET_F_VOTES[s] as f64 * scale / n_false_expected).min(1.0);
    }

    // Analytic calibration: the ≥1-vote conditioning inflates all realised
    // rates, so fixed-point-iterate multiplicative corrections against the
    // closed-form model statistics until the realised coverage/accuracy
    // land on the Table 3 targets. Noise-free, so a handful of iterations
    // converges tightly; `calibration_iters` scales the effort (×10).
    for _ in 0..config.calibration_iters.max(1) * 10 {
        let stats = model_stats(&h, &w, &f_rate);
        for s in 0..N_SOURCES {
            // acc = (p·tt + (1−p)·ff) / cov  and  cov·(1−acc) = (1−p)·tf.
            let desired_tt =
                (TARGET_COVERAGE[s] * TARGET_ACCURACY[s] - (1.0 - p) * stats.ff[s]).max(1e-6) / p;
            let desired_tf =
                (TARGET_COVERAGE[s] * (1.0 - TARGET_ACCURACY[s])).max(1e-9) / (1.0 - p);
            if stats.tt[s] > 1e-12 {
                h[s] = (h[s] * desired_tt / stats.tt[s]).clamp(1e-6, 1.0);
            }
            if stats.tf[s] > 1e-12 {
                w[s] = (w[s] * desired_tf / stats.tf[s]).clamp(1e-9, 1.0);
            }
            // Keep the absolute F-vote counts on target despite the
            // conditioning: realised count = N·(1−p)·f/keep_false.
            if TARGET_F_VOTES[s] > 0 && stats.ff[s] > 1e-12 {
                let realised = config.n_listings as f64 * (1.0 - p) * stats.ff[s];
                let want = TARGET_F_VOTES[s] as f64 * scale;
                f_rate[s] = (f_rate[s] * want / realised).min(1.0);
            }
        }
    }

    // Generate the real world: per listing, resample votes until at least
    // one source mentions it (a listing is a crawled record by definition).
    let mut b = DatasetBuilder::new();
    let source_ids: Vec<SourceId> = SOURCE_NAMES.iter().map(|n| b.add_source(*n)).collect();
    let mut true_ids = Vec::new();
    let mut false_ids = Vec::new();
    for i in 0..config.n_listings {
        let truth = rng.gen_bool(p);
        let z = popularity(&mut rng);
        // votes[s]: None = silent, Some(vote).
        let mut votes = [None; N_SOURCES];
        loop {
            let mut any = false;
            for s in 0..N_SOURCES {
                votes[s] = None;
                if !truth && f_rate[s] > 0.0 && rng.gen_bool(f_rate[s]) {
                    // The source flags the dead listing as CLOSED.
                    votes[s] = Some(Vote::False);
                    any = true;
                    continue;
                }
                let rate = if truth { h[s] } else { w[s] } * z;
                if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                    votes[s] = Some(Vote::True);
                    any = true;
                }
            }
            if any {
                break;
            }
        }
        let f = b.add_fact_with_truth(format!("listing{i}"), Label::from_bool(truth));
        let mut n_votes = 0usize;
        let mut has_f = false;
        for s in 0..N_SOURCES {
            if let Some(v) = votes[s] {
                b.cast(source_ids[s], f, v)?;
                n_votes += 1;
                has_f |= v == Vote::False;
            }
        }
        if truth {
            true_ids.push((f, n_votes));
        } else {
            false_ids.push((f, n_votes, has_f));
        }
    }

    // Stratified golden set: `golden_true` true + the rest false. The
    // paper's golden set (3 Manhattan zip codes, checked in person) is
    // *not* a uniform sample: its Table 4 baselines imply it skews toward
    // well-covered (popular-area) listings — Counting reaches recall 0.65
    // only if ~65% of the true golden listings carry 4+ votes — and
    // toward F-voted listings — Voting finds ~78 true negatives only if
    // that many golden-false listings have an F-majority. We reproduce
    // the skew with weighted sampling: true listings ∝ n_votes³, and a
    // configured share of the false part drawn from F-voted listings
    // (the rest ∝ n_votes).
    let golden_false = config.golden_size - config.golden_true;
    if true_ids.len() < config.golden_true || false_ids.len() < golden_false {
        return Err(CoreError::InvalidConfig {
            message: "dataset too small for the requested golden set".into(),
        });
    }
    // Weighted sampling without replacement via the exponential-keys
    // trick: take the k smallest `-ln(u)/w` keys.
    let weighted_draw = |items: &[(FactId, f64)], k: usize, rng: &mut StdRng| -> Vec<FactId> {
        let mut keyed: Vec<(f64, FactId)> = items
            .iter()
            .map(|&(f, w)| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                (-u.ln() / w.max(1e-9), f)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        keyed[..k].iter().map(|&(_, f)| f).collect()
    };

    let true_weighted: Vec<(FactId, f64)> =
        true_ids.iter().map(|&(f, n)| (f, (n as f64).powf(GOLDEN_POPULARITY_POWER))).collect();
    let mut golden = weighted_draw(&true_weighted, config.golden_true, &mut rng);

    // False part: F-voted share first, then popularity-weighted rest.
    let f_voted: Vec<(FactId, f64)> =
        false_ids.iter().filter(|&&(_, _, has_f)| has_f).map(|&(f, _, _)| (f, 1.0)).collect();
    let n_from_f = ((golden_false as f64 * GOLDEN_F_VOTED_SHARE) as usize).min(f_voted.len());
    let mut false_part = weighted_draw(&f_voted, n_from_f, &mut rng);
    let chosen: std::collections::HashSet<FactId> = false_part.iter().copied().collect();
    // Same popularity power as the true part so the per-source golden
    // accuracy (a ratio of the two) stays on the Table 3 targets.
    let rest_weighted: Vec<(FactId, f64)> = false_ids
        .iter()
        .filter(|&&(f, _, _)| !chosen.contains(&f))
        .map(|&(f, n, _)| (f, (n as f64).powf(GOLDEN_POPULARITY_POWER)))
        .collect();
    false_part.extend(weighted_draw(&rest_weighted, golden_false - n_from_f, &mut rng));
    golden.extend(false_part);
    golden.sort_unstable();

    Ok(RestaurantWorld { dataset: b.build()?, golden, hit_rate: h, noise_rate: w })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> RestaurantWorld {
        generate(&RestaurantConfig::small(7)).unwrap()
    }

    #[test]
    fn dimensions_and_golden_stratification() {
        let w = world();
        assert_eq!(w.dataset.n_sources(), 6);
        assert_eq!(w.dataset.n_facts(), 4_000);
        assert_eq!(w.golden.len(), 400);
        let truth = w.dataset.ground_truth().unwrap();
        let golden_true = w.golden.iter().filter(|&&f| truth.label(f).as_bool()).count();
        assert_eq!(golden_true, 226);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&RestaurantConfig::small(3)).unwrap();
        let b = generate(&RestaurantConfig::small(3)).unwrap();
        assert_eq!(a.dataset.votes().n_votes(), b.dataset.votes().n_votes());
        assert_eq!(a.golden, b.golden);
    }

    #[test]
    fn every_listing_has_a_vote() {
        let w = world();
        for f in w.dataset.facts() {
            assert!(!w.dataset.votes().votes_on(f).is_empty());
        }
    }

    #[test]
    fn coverage_matches_table_3_targets() {
        let w = world();
        for (s, (&got, &want)) in
            w.realised_coverage().iter().zip(TARGET_COVERAGE.iter()).enumerate()
        {
            assert!(
                (got - want).abs() < 0.05,
                "{}: coverage {got:.3} vs target {want:.3}",
                SOURCE_NAMES[s]
            );
        }
    }

    #[test]
    fn full_accuracy_matches_table_3_targets() {
        let w = world();
        let acc = w.realised_accuracy().unwrap();
        for (s, (&got, &want)) in acc.iter().zip(TARGET_ACCURACY.iter()).enumerate() {
            assert!(
                (got - want).abs() < 0.06,
                "{}: accuracy {got:.3} vs target {want:.3}",
                SOURCE_NAMES[s]
            );
        }
    }

    #[test]
    fn f_votes_only_from_the_three_sources_and_scaled() {
        let w = world();
        let mut f_counts = [0usize; N_SOURCES];
        for f in w.dataset.facts() {
            for sv in w.dataset.votes().votes_on(f) {
                if sv.vote == Vote::False {
                    f_counts[sv.source.index()] += 1;
                    // F votes sit on false listings only.
                    assert!(!w.dataset.ground_truth().unwrap().label(f).as_bool());
                }
            }
        }
        assert_eq!(f_counts[0], 0, "YellowPages never casts F");
        assert_eq!(f_counts[3], 0, "OpenTable never casts F");
        assert_eq!(f_counts[4], 0, "CitySearch never casts F");
        // Scaled targets: 4000/36916 ≈ 0.108 → MP ≈ 28, Yelp ≈ 46.
        let scale = 4_000.0 / 36_916.0;
        for s in [2usize, 5] {
            let want = TARGET_F_VOTES[s] as f64 * scale;
            let got = f_counts[s] as f64;
            assert!(
                (got - want).abs() < want.max(8.0),
                "{}: {got} F votes vs ≈{want:.0}",
                SOURCE_NAMES[s]
            );
        }
    }

    #[test]
    fn f_voted_listings_are_a_small_minority() {
        // <2% of listings have F votes, the paper's defining regime.
        let w = world();
        let f_voted =
            w.dataset.facts().filter(|&f| !w.dataset.votes().is_affirmative_only(f)).count();
        let frac = f_voted as f64 / w.dataset.n_facts() as f64;
        assert!(frac < 0.035, "F-voted fraction {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn overlap_exceeds_independence_via_popularity() {
        // YellowPages–CitySearch overlap: Table 3 reports 0.43; pure
        // independence would give ≈0.37. The popularity factor must lift
        // it visibly above independence.
        let w = generate(&RestaurantConfig { n_listings: 10_000, ..RestaurantConfig::small(5) })
            .unwrap();
        let j = w.dataset.source_overlap(SourceId::new(0), SourceId::new(4));
        assert!(j > 0.38, "YP–CS Jaccard {j:.3}");
        assert!(j < 0.55, "YP–CS Jaccard {j:.3}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = RestaurantConfig::small(1);
        c.golden_size = c.n_listings + 1;
        assert!(generate(&c).is_err());
        let mut c = RestaurantConfig::small(1);
        c.golden_true = c.golden_size + 1;
        assert!(generate(&c).is_err());
        let mut c = RestaurantConfig::small(1);
        c.n_listings = 0;
        assert!(generate(&c).is_err());
    }
}
