//! Synthetic dataset generator (paper §6.3.1) — the workload behind
//! Figure 3.
//!
//! The paper's model:
//!
//! - every source is *positive* (trust > 0.5) and falls into one of two
//!   profiles: **accurate** sources (trust uniform in `[0.7, 1.0]`) and
//!   **inaccurate** sources (trust uniform in `[0.5, 0.7]`);
//! - each accurate source `s` has a probability `m(s)` uniform in
//!   `[0, 0.5]` of casting an `F` vote for a false fact; inaccurate
//!   sources never cast `F` votes;
//! - source coverage follows Equation 11: `c(s) = 1 − σ(s) + random()·0.2`
//!   — inaccurate sources have *higher* coverage, mirroring the real-world
//!   observation that Yellowpages/Citysearch cover the most and err the
//!   most;
//! - each fact is independently true or false with equal probability;
//! - a factor `η` controls the fraction of facts that carry `F` votes.
//!
//! Concrete realisation (documented because the paper leaves the
//! vote-emission mechanics implicit):
//!
//! - an **accurate** source lists (casts `T` on) each *true* fact with
//!   probability `c(s)`; its only interaction with false facts is the
//!   `m(s)` F-vote channel the paper describes — it never erroneously
//!   affirms a false fact, so its errors are recall errors (missed
//!   listings), matching high-precision sources like OpenTable/Menupages;
//! - an **inaccurate** source lists each true fact with probability `c(s)`
//!   and erroneously lists each *false* fact with probability
//!   `c(s)·(1−σ)/σ`, making its realised vote accuracy land near its
//!   designed `σ` — the Yellowpages/Citysearch profile;
//! - `⌊η·|F|⌋` of the *false* facts are `F-eligible`; each accurate source
//!   casts an `F` vote on an eligible fact with its probability `m(s)`,
//!   and every eligible fact is guaranteed at least one `F` vote (one
//!   accurate source is drafted if none volunteered) so `η` is realised
//!   exactly;
//! - facts that end up with **no votes at all are dropped**: a fact in
//!   this problem *is* a crawled listing, and a listing nobody lists does
//!   not exist (the real dataset has a vote for every listing by
//!   construction). The dropped count is reported so experiments can
//!   account for it.

use corroborate_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of accurate sources (trust in `[0.7, 1.0]`).
    pub n_accurate: usize,
    /// Number of inaccurate sources (trust in `[0.5, 0.7]`, `T` votes only).
    pub n_inaccurate: usize,
    /// Number of candidate facts before the voteless are dropped (the
    /// paper generates 20,000).
    pub n_facts: usize,
    /// Fraction of candidate facts receiving `F` votes (Figure 3(c)
    /// sweeps 0.01–0.05).
    pub eta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        // Figure 3's base point: 10 sources, 2 inaccurate, 20k facts.
        Self { n_accurate: 8, n_inaccurate: 2, n_facts: 20_000, eta: 0.02, seed: 42 }
    }
}

impl SyntheticConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.n_accurate + self.n_inaccurate == 0 {
            return Err(CoreError::InvalidConfig { message: "need at least one source".into() });
        }
        if self.n_facts == 0 {
            return Err(CoreError::InvalidConfig { message: "need at least one fact".into() });
        }
        if !(0.0..=1.0).contains(&self.eta) {
            return Err(CoreError::InvalidConfig {
                message: format!("eta must be in [0, 1], got {}", self.eta),
            });
        }
        Ok(())
    }
}

/// The generated dataset plus the latent per-source parameters, for
/// calibration checks and MSE evaluation against the *designed* trust.
#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    /// The corroboration problem instance (ground truth attached).
    pub dataset: Dataset,
    /// Designed trust score `σ(s)` per source.
    pub designed_trust: Vec<f64>,
    /// Designed coverage `c(s)` per source (Equation 11).
    pub designed_coverage: Vec<f64>,
    /// Designed `m(s)` (F-vote probability) per source; 0 for inaccurate
    /// sources.
    pub designed_f_rate: Vec<f64>,
    /// Ids of the accurate sources (the rest are inaccurate).
    pub accurate_sources: Vec<SourceId>,
    /// Candidate facts dropped because no source voted on them.
    pub dropped_voteless: usize,
}

/// Generates a synthetic world per the §6.3.1 model.
///
/// Deterministic given the config (including the seed).
pub fn generate(config: &SyntheticConfig) -> Result<SyntheticWorld, CoreError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);

    let n_sources = config.n_accurate + config.n_inaccurate;
    let mut designed_trust = Vec::with_capacity(n_sources);
    let mut designed_coverage = Vec::with_capacity(n_sources);
    let mut designed_f_rate = Vec::with_capacity(n_sources);
    let mut source_names = Vec::with_capacity(n_sources);

    for i in 0..n_sources {
        let accurate = i < config.n_accurate;
        source_names.push(if accurate {
            format!("accurate{i}")
        } else {
            format!("inaccurate{}", i - config.n_accurate)
        });
        let sigma: f64 = if accurate { rng.gen_range(0.7..1.0) } else { rng.gen_range(0.5..0.7) };
        // Equation 11; clamped into (0, 1].
        let coverage: f64 = (1.0 - sigma + rng.gen_range(0.0..1.0_f64) * 0.2).clamp(0.01, 1.0);
        designed_trust.push(sigma);
        designed_coverage.push(coverage);
        designed_f_rate.push(if accurate { rng.gen_range(0.0..0.5) } else { 0.0 });
    }

    // Candidate facts: uniformly true/false.
    let truths: Vec<bool> = (0..config.n_facts).map(|_| rng.gen_bool(0.5)).collect();

    // η·N of the false facts are F-eligible (partial Fisher–Yates draw).
    let mut pool: Vec<usize> = (0..config.n_facts).filter(|&i| !truths[i]).collect();
    let n_eligible = ((config.eta * config.n_facts as f64) as usize).min(pool.len());
    for i in 0..n_eligible {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    let mut is_eligible = vec![false; config.n_facts];
    for &i in &pool[..n_eligible] {
        is_eligible[i] = true;
    }

    // Emit votes into a staging area keyed by candidate index.
    #[derive(Clone, Copy)]
    struct StagedVote {
        source: usize,
        vote: Vote,
    }
    let mut staged: Vec<Vec<StagedVote>> = vec![Vec::new(); config.n_facts];
    let accurate_range = 0..config.n_accurate;
    for s in 0..n_sources {
        let accurate = accurate_range.contains(&s);
        let c = designed_coverage[s];
        let sigma = designed_trust[s];
        let wrong_rate = if accurate { 0.0 } else { (c * (1.0 - sigma) / sigma).clamp(0.0, 1.0) };
        for (i, &t) in truths.iter().enumerate() {
            if t {
                if rng.gen_bool(c) {
                    staged[i].push(StagedVote { source: s, vote: Vote::True });
                }
            } else if is_eligible[i] {
                if accurate && rng.gen_bool(designed_f_rate[s]) {
                    staged[i].push(StagedVote { source: s, vote: Vote::False });
                } else if !accurate && rng.gen_bool(wrong_rate) {
                    staged[i].push(StagedVote { source: s, vote: Vote::True });
                }
            } else if !accurate && rng.gen_bool(wrong_rate) {
                staged[i].push(StagedVote { source: s, vote: Vote::True });
            }
        }
    }
    // Guarantee every eligible fact carries at least one F vote.
    if config.n_accurate > 0 {
        for (votes, &eligible) in staged.iter_mut().zip(&is_eligible) {
            if eligible && !votes.iter().any(|v| v.vote == Vote::False) {
                let pick = rng.gen_range(0..config.n_accurate);
                votes.push(StagedVote { source: pick, vote: Vote::False });
            }
        }
    }

    // Materialise, dropping voteless candidates.
    let mut b = DatasetBuilder::new();
    let source_ids: Vec<SourceId> = source_names.into_iter().map(|n| b.add_source(n)).collect();
    let mut dropped_voteless = 0usize;
    for (i, votes) in staged.iter().enumerate() {
        if votes.is_empty() {
            dropped_voteless += 1;
            continue;
        }
        let f = b.add_fact_with_truth(format!("f{i}"), Label::from_bool(truths[i]));
        for v in votes {
            b.cast(source_ids[v.source], f, v.vote)?;
        }
    }

    Ok(SyntheticWorld {
        dataset: b.build()?,
        designed_trust,
        designed_coverage,
        designed_f_rate,
        accurate_sources: source_ids[..config.n_accurate].to_vec(),
        dropped_voteless,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig { n_accurate: 4, n_inaccurate: 2, n_facts: 2_000, eta: 0.03, seed: 7 }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small()).unwrap();
        let b = generate(&small()).unwrap();
        assert_eq!(a.dataset.votes().n_votes(), b.dataset.votes().n_votes());
        assert_eq!(
            a.dataset.ground_truth().unwrap().labels(),
            b.dataset.ground_truth().unwrap().labels()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small()).unwrap();
        let mut cfg = small();
        cfg.seed = 8;
        let b = generate(&cfg).unwrap();
        assert_ne!(a.dataset.n_facts(), b.dataset.n_facts());
    }

    #[test]
    fn every_kept_fact_has_a_vote() {
        let w = generate(&small()).unwrap();
        for f in w.dataset.facts() {
            assert!(!w.dataset.votes().votes_on(f).is_empty());
        }
        assert_eq!(w.dataset.n_facts() + w.dropped_voteless, small().n_facts);
    }

    #[test]
    fn eta_controls_f_voted_fact_count_exactly() {
        let w = generate(&small()).unwrap();
        let ds = &w.dataset;
        let f_voted = ds.facts().filter(|&f| !ds.votes().is_affirmative_only(f)).count();
        assert_eq!(f_voted, (0.03 * 2_000.0) as usize);
    }

    #[test]
    fn f_votes_come_only_from_accurate_sources_on_false_facts() {
        let w = generate(&small()).unwrap();
        let ds = &w.dataset;
        let truth = ds.ground_truth().unwrap();
        for f in ds.facts() {
            for sv in ds.votes().votes_on(f) {
                if sv.vote == Vote::False {
                    assert!(w.accurate_sources.contains(&sv.source));
                    assert!(!truth.label(f).as_bool());
                }
            }
        }
    }

    #[test]
    fn accurate_sources_are_high_precision() {
        // Their only false-fact channel is the F vote, so their realised
        // vote accuracy is ~1 (errors are recall errors).
        let w = generate(&small()).unwrap();
        let acc = w.dataset.source_accuracies().unwrap();
        for s in &w.accurate_sources {
            assert!(acc[s.index()].unwrap() > 0.99, "{s}");
        }
    }

    #[test]
    fn inaccurate_sources_realise_their_designed_trust() {
        let cfg = SyntheticConfig { n_facts: 20_000, ..small() };
        let w = generate(&cfg).unwrap();
        let acc = w.dataset.source_accuracies().unwrap();
        for (s, &designed) in
            w.designed_trust.iter().enumerate().skip(cfg.n_accurate).take(cfg.n_inaccurate)
        {
            let realised = acc[s].unwrap();
            assert!(
                (realised - designed).abs() < 0.08,
                "s{s}: realised {realised:.3} vs designed {designed:.3}"
            );
        }
    }

    #[test]
    fn inaccurate_sources_have_higher_coverage() {
        // Equation 11's design intent, checked on the realised data.
        let cfg = SyntheticConfig { n_facts: 10_000, ..small() };
        let w = generate(&cfg).unwrap();
        let ds = &w.dataset;
        let mean = |ids: std::ops::Range<usize>| -> f64 {
            let n = ids.len() as f64;
            ids.map(|i| ds.source_coverage(SourceId::new(i))).sum::<f64>() / n
        };
        let acc_cov = mean(0..4);
        let inacc_cov = mean(4..6);
        assert!(inacc_cov > acc_cov, "inaccurate {inacc_cov:.3} must exceed accurate {acc_cov:.3}");
    }

    #[test]
    fn kept_facts_skew_true() {
        // Voteless (dropped) candidates are mostly false facts nobody
        // listed, so the kept population leans true — like the crawl.
        let w = generate(&small()).unwrap();
        let t = w.dataset.ground_truth().unwrap();
        let frac = t.n_true() as f64 / t.len() as f64;
        assert!(frac > 0.5, "true fraction {frac}");
        assert!(w.dropped_voteless > 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small();
        cfg.n_accurate = 0;
        cfg.n_inaccurate = 0;
        assert!(generate(&cfg).is_err());
        let mut cfg = small();
        cfg.eta = 1.5;
        assert!(generate(&cfg).is_err());
        let mut cfg = small();
        cfg.n_facts = 0;
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn all_inaccurate_world_has_no_f_votes() {
        let cfg =
            SyntheticConfig { n_accurate: 0, n_inaccurate: 5, n_facts: 1_000, eta: 0.05, seed: 1 };
        let w = generate(&cfg).unwrap();
        for f in w.dataset.facts() {
            assert!(w.dataset.votes().is_affirmative_only(f));
        }
    }
}
