//! # corroborate-datagen
//!
//! Dataset generators for the `corroborate` workspace (placeholder header —
//! extended as modules land).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod hubdub;
pub mod motivating;
pub mod restaurant;
pub mod reviews;
pub mod synthetic;
