//! Cross-crate integration tests: crawl → dedup → corroborate, and the
//! full Table-4 protocol (corroborate the full dataset, score the golden
//! subset, train ML baselines on the golden subset).

use corroborate::algorithms::baseline::Voting;
use corroborate::algorithms::galland::TwoEstimates;
use corroborate::core::metrics::confusion_on_subset;
use corroborate::datagen::restaurant::{generate, RestaurantConfig};
use corroborate::dedup::crawlgen::{demo_universe, synthetic_crawl, CrawlConfig};
use corroborate::dedup::pipeline::dedup_to_dataset;
use corroborate::ml::eval::evaluate_on_golden;
use corroborate::ml::logistic::LogisticRegression;
use corroborate::prelude::*;

#[test]
fn crawl_dedup_corroborate_pipeline_runs_end_to_end() {
    let universe = demo_universe();
    let crawl = synthetic_crawl(&universe, &CrawlConfig::default());
    assert!(crawl.len() > universe.len(), "crawl has duplicates");

    let out = dedup_to_dataset(&crawl).expect("dedup pipeline");
    assert!(out.dataset.n_facts() >= universe.len() / 2);
    assert!(out.dataset.n_facts() < crawl.len());

    for alg in [
        &Voting as &dyn Corroborator,
        &TwoEstimates::default(),
        &IncEstimate::new(IncEstHeu::default()),
    ] {
        let r = alg.corroborate(&out.dataset).expect("corroboration");
        assert_eq!(r.probabilities().len(), out.dataset.n_facts());
        for &p in r.probabilities() {
            assert!((0.0..=1.0).contains(&p), "{}: p = {p}", alg.name());
        }
    }
}

#[test]
fn golden_set_protocol_spans_generator_algorithms_and_ml() {
    // Scaled-down restaurant world to keep the test quick.
    let world = generate(&RestaurantConfig::small(11)).expect("generation");
    let ds = &world.dataset;
    let truth = ds.ground_truth().expect("simulated world is labelled");

    // Corroborate full data, score golden subset.
    let heu = IncEstimate::new(IncEstHeu::default()).corroborate(ds).expect("IncEstHeu");
    let heu_m = confusion_on_subset(heu.decisions(), truth, &world.golden).expect("subset");
    let voting = Voting.corroborate(ds).expect("voting");
    let voting_m = confusion_on_subset(voting.decisions(), truth, &world.golden).expect("subset");

    // The headline claim at integration scale: IncEstHeu is never worse
    // than majority voting on the golden subset (at this reduced scale a
    // tie is possible when the few F votes miss the golden sample; the
    // strict dominance is asserted on the full dataset below and at full
    // scale by tests/reproduction.rs).
    assert!(
        heu_m.accuracy() >= voting_m.accuracy(),
        "IncEstHeu {:.3} must not lose to Voting {:.3}",
        heu_m.accuracy(),
        voting_m.accuracy()
    );
    let heu_full = heu.confusion(ds).expect("labelled");
    let voting_full = voting.confusion(ds).expect("labelled");
    assert!(
        heu_full.accuracy() >= voting_full.accuracy(),
        "full data: IncEstHeu {:.3} must not lose to Voting {:.3}",
        heu_full.accuracy(),
        voting_full.accuracy()
    );

    // ML protocol runs over the same golden subset.
    let ml = evaluate_on_golden::<LogisticRegression>(ds, &world.golden, 10, 5).expect("CV");
    assert!(ml.confusion.total() == world.golden.len());
    assert!(ml.confusion.accuracy() > voting_m.accuracy());
}

#[test]
fn trajectories_are_exposed_through_the_umbrella_crate() {
    let world = generate(&RestaurantConfig::small(3)).expect("generation");
    let r = IncEstimate::new(IncEstHeu::default()).corroborate(&world.dataset).expect("run");
    let traj = r.trajectory().expect("incremental algorithm records trust");
    assert_eq!(traj.len(), r.rounds() + 1);
    // Every snapshot stays within [0, 1] for every source.
    for snap in traj.iter() {
        for s in world.dataset.sources() {
            let t = snap.trust(s);
            assert!((0.0..=1.0).contains(&t));
        }
    }
}
