//! Property-based tests (proptest): invariants every corroborator must
//! satisfy on arbitrary vote matrices, plus data-structure round trips.

use corroborate::algorithms::baseline::{Counting, Voting};
use corroborate::algorithms::extra::{AccuVote, Pasternack, PasternackVariant, TruthFinder};
use corroborate::algorithms::galland::{Cosine, ThreeEstimates, TwoEstimates};
use corroborate::core::entropy::binary_entropy;
use corroborate::core::groups::group_by_signature;
use corroborate::core::scoring::corrob_probability;
use corroborate::prelude::*;
use proptest::prelude::*;

/// Strategy: a random dataset with 1–6 sources, 1–25 facts and arbitrary
/// sparse votes.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..=6, 1usize..=25).prop_flat_map(|(n_sources, n_facts)| {
        // Each (source, fact) cell: 0 = absent, 1 = T, 2 = F.
        proptest::collection::vec(0u8..3, n_sources * n_facts).prop_map(move |cells| {
            let mut b = DatasetBuilder::new();
            let sources: Vec<SourceId> =
                (0..n_sources).map(|i| b.add_source(format!("s{i}"))).collect();
            let facts: Vec<FactId> = (0..n_facts).map(|i| b.add_fact(format!("f{i}"))).collect();
            for (idx, &cell) in cells.iter().enumerate() {
                let s = sources[idx / n_facts];
                let f = facts[idx % n_facts];
                match cell {
                    1 => b.cast(s, f, Vote::True).unwrap(),
                    2 => b.cast(s, f, Vote::False).unwrap(),
                    _ => {}
                }
            }
            b.build().unwrap()
        })
    })
}

fn all_corroborators() -> Vec<Box<dyn Corroborator>> {
    vec![
        Box::new(Voting),
        Box::new(Counting),
        Box::new(TwoEstimates::default()),
        Box::new(ThreeEstimates::default()),
        Box::new(Cosine::default()),
        Box::new(TruthFinder::default()),
        Box::new(AccuVote::default()),
        Box::new(Pasternack::new(PasternackVariant::Sums)),
        Box::new(Pasternack::new(PasternackVariant::AvgLog)),
        Box::new(Pasternack::new(PasternackVariant::Invest)),
        Box::new(Pasternack::new(PasternackVariant::PooledInvest)),
        Box::new(IncEstimate::new(IncEstHeu::default())),
        Box::new(IncEstimate::new(IncEstPS)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm returns probabilities and trust in [0, 1], covers
    /// every fact, and is deterministic.
    #[test]
    fn corroborators_satisfy_basic_invariants(ds in arb_dataset()) {
        for alg in all_corroborators() {
            let r1 = alg.corroborate(&ds).expect("corroboration succeeds");
            prop_assert_eq!(r1.probabilities().len(), ds.n_facts());
            for &p in r1.probabilities() {
                prop_assert!((0.0..=1.0).contains(&p), "{}: p = {}", alg.name(), p);
            }
            for s in ds.sources() {
                let t = r1.trust().trust(s);
                prop_assert!((0.0..=1.0).contains(&t), "{}: trust = {}", alg.name(), t);
            }
            let r2 = alg.corroborate(&ds).expect("second run succeeds");
            prop_assert_eq!(r1.probabilities(), r2.probabilities(), "{}", alg.name());
        }
    }

    /// A unanimously-affirmed fact is never ranked below a unanimously
    /// denied one by the iterative methods.
    #[test]
    fn unanimous_polarity_orders_probabilities(n_extra in 1usize..10) {
        let mut b = DatasetBuilder::new();
        let sources: Vec<SourceId> = (0..3).map(|i| b.add_source(format!("s{i}"))).collect();
        let yes = b.add_fact("yes");
        let no = b.add_fact("no");
        for &s in &sources {
            b.cast(s, yes, Vote::True).unwrap();
            b.cast(s, no, Vote::False).unwrap();
        }
        for i in 0..n_extra {
            let f = b.add_fact(format!("extra{i}"));
            b.cast(sources[i % 3], f, Vote::True).unwrap();
        }
        let ds = b.build().unwrap();
        for alg in all_corroborators() {
            let r = alg.corroborate(&ds).unwrap();
            prop_assert!(
                r.probability(yes) >= r.probability(no),
                "{}: p(yes)={} < p(no)={}",
                alg.name(), r.probability(yes), r.probability(no)
            );
        }
    }

    /// Fact groups partition the requested facts, and members share their
    /// group's signature exactly.
    #[test]
    fn fact_groups_partition_and_share_signatures(ds in arb_dataset()) {
        let facts: Vec<FactId> = ds.facts().collect();
        let groups = group_by_signature(ds.votes(), &facts);
        let total: usize = groups.iter().map(|g| g.facts.len()).sum();
        prop_assert_eq!(total, facts.len());
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &f in &g.facts {
                prop_assert!(seen.insert(f), "fact {} in two groups", f);
                prop_assert_eq!(ds.votes().signature(f), g.signature.as_slice());
            }
        }
    }

    /// The Corrob score is monotone in trust for affirmative-only
    /// signatures: raising every source's trust never lowers it.
    #[test]
    fn corrob_is_monotone_in_trust(
        trusts in proptest::collection::vec(0.0f64..=1.0, 1..6),
        bump in 0.0f64..=0.3,
    ) {
        let n = trusts.len();
        let votes: Vec<corroborate::core::vote::SourceVote> = (0..n)
            .map(|i| corroborate::core::vote::SourceVote {
                source: SourceId::new(i),
                vote: Vote::True,
            })
            .collect();
        let low = TrustSnapshot::from_values(trusts.clone()).unwrap();
        let high = TrustSnapshot::from_values(
            trusts.iter().map(|t| (t + bump).min(1.0)).collect(),
        )
        .unwrap();
        let p_low = corrob_probability(&votes, &low).unwrap();
        let p_high = corrob_probability(&votes, &high).unwrap();
        prop_assert!(p_high >= p_low - 1e-12);
    }

    /// Binary entropy stays in [0, 1] and is symmetric.
    #[test]
    fn entropy_bounds_and_symmetry(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    /// Dataset projection preserves per-fact votes and truth.
    #[test]
    fn projection_is_faithful(ds in arb_dataset(), pick in proptest::collection::vec(any::<proptest::sample::Index>(), 1..8)) {
        let facts: Vec<FactId> = ds.facts().collect();
        let chosen: Vec<FactId> = pick.iter().map(|i| facts[i.index(facts.len())]).collect();
        let sub = ds.project_facts(&chosen).unwrap();
        prop_assert_eq!(sub.n_facts(), chosen.len());
        for (new_idx, &old) in chosen.iter().enumerate() {
            let new_f = FactId::new(new_idx);
            prop_assert_eq!(sub.votes().votes_on(new_f), ds.votes().votes_on(old));
            prop_assert_eq!(sub.fact_name(new_f), ds.fact_name(old));
        }
    }

    /// Any dataset round-trips through the CSV interchange format.
    #[test]
    fn csv_round_trip_is_lossless(ds in arb_dataset()) {
        use corroborate::core::io::{dataset_from_csv, votes_to_csv};
        let csv = votes_to_csv(&ds);
        let back = dataset_from_csv(&csv, None).unwrap();
        // Voteless facts don't appear in the votes file; compare the voted
        // sub-structure: every vote must survive with its polarity.
        let mut original: Vec<(String, String, Vote)> = Vec::new();
        for f in ds.facts() {
            for sv in ds.votes().votes_on(f) {
                original.push((
                    ds.source_name(sv.source).to_string(),
                    ds.fact_name(f).to_string(),
                    sv.vote,
                ));
            }
        }
        let mut recovered: Vec<(String, String, Vote)> = Vec::new();
        for f in back.facts() {
            for sv in back.votes().votes_on(f) {
                recovered.push((
                    back.source_name(sv.source).to_string(),
                    back.fact_name(f).to_string(),
                    sv.vote,
                ));
            }
        }
        original.sort();
        recovered.sort();
        prop_assert_eq!(original, recovered);
    }

    /// Merging a dataset with an empty one preserves its voted structure.
    #[test]
    fn merge_with_empty_is_identity_on_votes(ds in arb_dataset()) {
        let empty = DatasetBuilder::new().build().unwrap();
        let merged = ds.merge(&empty).unwrap();
        prop_assert_eq!(merged.n_sources(), ds.n_sources());
        prop_assert_eq!(merged.n_facts(), ds.n_facts());
        prop_assert_eq!(merged.votes().n_votes(), ds.votes().n_votes());
        // Self-merge is idempotent on the vote structure too (same votes,
        // last-writer-wins resolves to the same polarity).
        let doubled = ds.merge(&ds).unwrap();
        prop_assert_eq!(doubled.votes().n_votes(), ds.votes().n_votes());
    }

    /// IncEstimate evaluates every fact exactly once regardless of the
    /// strategy's behaviour, and the trajectory length matches rounds+1.
    #[test]
    fn inc_estimate_total_coverage(ds in arb_dataset()) {
        for strategy in ["heu", "ps"] {
            let r = match strategy {
                "heu" => IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap(),
                _ => {
                    let boxed: Box<dyn Corroborator> = Box::new(IncEstimate::new(IncEstPS));
                    boxed.corroborate(&ds).unwrap()
                }
            };
            prop_assert_eq!(r.probabilities().len(), ds.n_facts());
            let traj = r.trajectory().unwrap();
            prop_assert_eq!(traj.len(), r.rounds() + 1);
        }
    }
}
