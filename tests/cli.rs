//! End-to-end tests of the `corroborate` command-line binary: generate a
//! dataset to CSV, inspect it, and corroborate it — exercising the io
//! module, the CLI plumbing and the algorithm registry through the real
//! executable.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_corroborate"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("corroborate-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_stats_run_round_trip() {
    let votes = tmp("votes.csv");
    let truth = tmp("truth.csv");

    // generate
    let out = bin()
        .args(["generate", "--kind", "motivating"])
        .arg("--out-votes")
        .arg(&votes)
        .arg("--out-truth")
        .arg(&truth)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // stats
    let out = bin()
        .arg("stats")
        .arg("--votes")
        .arg(&votes)
        .arg("--truth")
        .arg(&truth)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sources: 5"), "{stdout}");
    assert!(stdout.contains("facts:   12"), "{stdout}");
    assert!(stdout.contains("affirmative-only facts: 10"), "{stdout}");

    // run with the default algorithm
    let out = bin()
        .arg("run")
        .arg("--votes")
        .arg(&votes)
        .arg("--truth")
        .arg(&truth)
        .args(["--algorithm", "inc-heu", "--trust"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.starts_with("fact,probability,decision"), "{stdout}");
    // r12 must be uncovered as false.
    assert!(stdout.lines().any(|l| l.starts_with("r12,") && l.ends_with("false")), "{stdout}");
    assert!(stderr.contains("vs ground truth"), "{stderr}");
    assert!(stderr.contains("source trust"), "{stderr}");

    let _ = std::fs::remove_file(&votes);
    let _ = std::fs::remove_file(&truth);
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let votes = tmp("unknown-alg.csv");
    std::fs::write(&votes, "A,f1,T\n").unwrap();
    let out = bin()
        .arg("run")
        .arg("--votes")
        .arg(&votes)
        .args(["--algorithm", "definitely-not-real"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
    let _ = std::fs::remove_file(&votes);
}

#[test]
fn algorithms_listing_names_every_method() {
    let out = bin().arg("algorithms").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["voting", "two-estimates", "bayes", "accuvote", "inc-heu"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn missing_file_is_a_clean_error() {
    let out =
        bin().arg("run").args(["--votes", "/nonexistent/path.csv"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
