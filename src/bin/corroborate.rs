//! `corroborate` — command-line truth discovery.
//!
//! ```text
//! corroborate run      --votes votes.csv [--truth truth.csv] [--algorithm inc-heu] [--trust] [--trajectory]
//! corroborate stats    --votes votes.csv [--truth truth.csv]
//! corroborate generate --kind synthetic|restaurant|hubdub|motivating [--seed N] [--facts N]
//!                      --out-votes votes.csv [--out-truth truth.csv]
//! corroborate algorithms
//! ```
//!
//! Votes/truth files use the CSV dialect of `corroborate_core::io`
//! (`source,fact,vote` with `T`/`F`; `fact,label` with `true`/`false`).

use std::collections::HashMap;
use std::process::ExitCode;

use corroborate::algorithms::baseline::{Counting, Voting};
use corroborate::algorithms::bayes::{BayesEstimate, BayesEstimateConfig};
use corroborate::algorithms::extra::{AccuVote, Pasternack, PasternackVariant, TruthFinder};
use corroborate::algorithms::galland::{Cosine, ThreeEstimates, TwoEstimates};
use corroborate::core::io::{dataset_from_csv, truth_to_csv, votes_to_csv};
use corroborate::prelude::*;

const ALGORITHMS: &[(&str, &str)] = &[
    ("voting", "majority of cast votes (baseline)"),
    ("counting", "majority of all sources (baseline)"),
    ("two-estimates", "Galland et al. 2-Estimates"),
    ("three-estimates", "Galland et al. 3-Estimates"),
    ("cosine", "Galland et al. Cosine"),
    ("bayes", "BayesEstimate / Latent Truth Model (Gibbs)"),
    ("truthfinder", "Yin et al. TruthFinder"),
    ("accuvote", "Dong et al. dependence-aware AccuVote"),
    ("sums", "Kleinberg hubs-and-authorities (Sums)"),
    ("avglog", "Pasternack & Roth AvgLog"),
    ("invest", "Pasternack & Roth Invest"),
    ("pooledinvest", "Pasternack & Roth PooledInvest"),
    ("inc-ps", "IncEstimate with greedy selection (IncEstPS)"),
    ("inc-heu", "IncEstimate with entropy heuristic (IncEstHeu, default)"),
];

fn make_algorithm(name: &str, seed: u64) -> Option<Box<dyn Corroborator>> {
    Some(match name {
        "voting" => Box::new(Voting),
        "counting" => Box::new(Counting),
        "two-estimates" => Box::new(TwoEstimates::default()),
        "three-estimates" => Box::new(ThreeEstimates::default()),
        "cosine" => Box::new(Cosine::default()),
        "bayes" => Box::new(BayesEstimate::new(BayesEstimateConfig::paper_priors(seed))),
        "truthfinder" => Box::new(TruthFinder::default()),
        "accuvote" => Box::new(AccuVote::default()),
        "sums" => Box::new(Pasternack::new(PasternackVariant::Sums)),
        "avglog" => Box::new(Pasternack::new(PasternackVariant::AvgLog)),
        "invest" => Box::new(Pasternack::new(PasternackVariant::Invest)),
        "pooledinvest" => Box::new(Pasternack::new(PasternackVariant::PooledInvest)),
        "inc-ps" => Box::new(IncEstimate::new(IncEstPS)),
        "inc-heu" => Box::new(IncEstimate::new(IncEstHeu::default())),
        _ => return None,
    })
}

/// Minimal `--flag value` / `--switch` parser.
struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => switches.push(name.to_string()),
            }
        }
        Ok(Self { values, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let votes_path = args.get("votes").ok_or("missing --votes FILE")?;
    let votes = std::fs::read_to_string(votes_path)
        .map_err(|e| format!("cannot read {votes_path}: {e}"))?;
    let truth = match args.get("truth") {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };
    dataset_from_csv(&votes, truth.as_deref()).map_err(|e| e.to_string())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let name = args.get("algorithm").unwrap_or("inc-heu");
    let seed: u64 = args
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .transpose()?
        .unwrap_or(42);
    let alg = make_algorithm(name, seed)
        .ok_or_else(|| format!("unknown algorithm {name:?}; see `corroborate algorithms`"))?;
    let result = alg.corroborate(&ds).map_err(|e| e.to_string())?;

    println!("fact,probability,decision");
    for f in ds.facts() {
        println!(
            "{},{:.4},{}",
            escape_csv(ds.fact_name(f)),
            result.probability(f),
            result.decisions().label(f).as_bool()
        );
    }
    if args.has("trust") {
        eprintln!("\nsource trust ({}):", alg.name());
        for s in ds.sources() {
            eprintln!("  {},{:.4}", escape_csv(ds.source_name(s)), result.trust().trust(s));
        }
    }
    if args.has("trajectory") {
        match result.trajectory() {
            Some(traj) => {
                eprintln!("\ntrust trajectory ({} time points):", traj.len());
                for (t, snap) in traj.iter().enumerate() {
                    let row: Vec<String> =
                        snap.values().iter().map(|v| format!("{v:.3}")).collect();
                    eprintln!("  t{t}: {}", row.join(","));
                }
            }
            None => eprintln!("\n(algorithm {} records no trajectory)", alg.name()),
        }
    }
    if ds.ground_truth().is_some() {
        let m = result.confusion(&ds).map_err(|e| e.to_string())?;
        eprintln!(
            "\nvs ground truth: precision {:.3}, recall {:.3}, accuracy {:.3}, F1 {:.3} ({} errors)",
            m.precision(),
            m.recall(),
            m.accuracy(),
            m.f1(),
            m.errors()
        );
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    println!("sources: {}", ds.n_sources());
    println!("facts:   {}", ds.n_facts());
    println!("votes:   {}", ds.votes().n_votes());
    println!(
        "affirmative-only facts: {} ({:.1}%)",
        ds.votes().affirmative_only_count(),
        100.0 * ds.votes().affirmative_only_count() as f64 / ds.n_facts().max(1) as f64
    );
    println!("\nper-source coverage / affirmative rate:");
    for s in ds.sources() {
        let rate =
            ds.votes().affirmative_rate(s).map(|r| format!("{r:.3}")).unwrap_or_else(|| "-".into());
        println!(
            "  {:<24} coverage {:.3}  T-rate {}",
            ds.source_name(s),
            ds.source_coverage(s),
            rate
        );
    }
    if ds.ground_truth().is_some() {
        println!("\nper-source accuracy vs ground truth:");
        let acc = ds.source_accuracies().map_err(|e| e.to_string())?;
        for s in ds.sources() {
            let a = acc[s.index()].map(|a| format!("{a:.3}")).unwrap_or_else(|| "-".into());
            println!("  {:<24} {}", ds.source_name(s), a);
        }
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let kind = args.get("kind").ok_or("missing --kind synthetic|restaurant|hubdub|motivating")?;
    let seed: u64 = args
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .transpose()?
        .unwrap_or(42);
    let ds = match kind {
        "motivating" => corroborate::datagen::motivating::motivating_example(),
        "synthetic" => {
            let mut cfg =
                corroborate::datagen::synthetic::SyntheticConfig { seed, ..Default::default() };
            if let Some(n) = args.get("facts") {
                cfg.n_facts = n.parse().map_err(|_| format!("bad --facts {n:?}"))?;
            }
            corroborate::datagen::synthetic::generate(&cfg).map_err(|e| e.to_string())?.dataset
        }
        "restaurant" => {
            let mut cfg =
                corroborate::datagen::restaurant::RestaurantConfig { seed, ..Default::default() };
            if let Some(n) = args.get("facts") {
                cfg.n_listings = n.parse().map_err(|_| format!("bad --facts {n:?}"))?;
                cfg.golden_size = cfg.golden_size.min(cfg.n_listings);
            }
            corroborate::datagen::restaurant::generate(&cfg).map_err(|e| e.to_string())?.dataset
        }
        "hubdub" => {
            let cfg = corroborate::datagen::hubdub::HubdubConfig { seed, ..Default::default() };
            corroborate::datagen::hubdub::generate(&cfg).map_err(|e| e.to_string())?.dataset
        }
        other => return Err(format!("unknown --kind {other:?}")),
    };

    let out_votes = args.get("out-votes").ok_or("missing --out-votes FILE")?;
    std::fs::write(out_votes, votes_to_csv(&ds)).map_err(|e| e.to_string())?;
    eprintln!("wrote {} votes to {out_votes}", ds.votes().n_votes());
    if let Some(out_truth) = args.get("out-truth") {
        std::fs::write(out_truth, truth_to_csv(&ds).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        eprintln!("wrote truth for {} facts to {out_truth}", ds.n_facts());
    }
    Ok(())
}

fn escape_csv(s: &str) -> String {
    if s.contains([',', '"']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     corroborate run      --votes FILE [--truth FILE] [--algorithm NAME] [--seed N] [--trust] [--trajectory]\n  \
     corroborate stats    --votes FILE [--truth FILE]\n  \
     corroborate generate --kind synthetic|restaurant|hubdub|motivating [--seed N] [--facts N] --out-votes FILE [--out-truth FILE]\n  \
     corroborate algorithms"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if command == "algorithms" {
        for (name, desc) in ALGORITHMS {
            println!("{name:<16} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "run" => cmd_run(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_values_and_switches() {
        let a = Args::parse(&argv(&["--votes", "v.csv", "--trust", "--seed", "7"])).unwrap();
        assert_eq!(a.get("votes"), Some("v.csv"));
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.has("trust"));
        assert!(!a.has("trajectory"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn args_reject_positionals() {
        assert!(Args::parse(&argv(&["stray"])).is_err());
        assert!(Args::parse(&argv(&["--ok", "v", "stray"])).is_err());
    }

    #[test]
    fn trailing_switch_is_a_switch() {
        let a = Args::parse(&argv(&["--votes", "v.csv", "--trajectory"])).unwrap();
        assert!(a.has("trajectory"));
    }

    #[test]
    fn every_advertised_algorithm_is_constructible() {
        for (name, _) in ALGORITHMS {
            assert!(make_algorithm(name, 1).is_some(), "{name}");
        }
        assert!(make_algorithm("nope", 1).is_none());
    }

    #[test]
    fn csv_escaping_quotes_commas() {
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
