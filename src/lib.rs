//! # corroborate
//!
//! A production-quality Rust reproduction of *“Corroborating Facts from
//! Affirmative Statements”* (Minji Wu & Amélie Marian, EDBT 2014) — truth
//! discovery in the regime where almost every fact receives only
//! affirmative statements, so conventional corroboration collapses into
//! “believe everything”.
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`core`] — datasets, votes, trust scores, entropy, metrics
//!   (`corroborate-core`);
//! - [`algorithms`] — **IncEstimate** (the paper's contribution, with the
//!   `IncEstHeu` entropy heuristic and `IncEstPS` foil) plus every
//!   baseline: `Voting`, `Counting`, `2-/3-Estimates`, `Cosine`,
//!   `BayesEstimate`/LTM, `TruthFinder`, `AvgLog`, `Invest`,
//!   `PooledInvest`, and the multi-answer adapter
//!   (`corroborate-algorithms`);
//! - [`ml`] — from-scratch logistic regression and SMO-trained linear SVM
//!   baselines with 10-fold CV (`corroborate-ml`);
//! - [`datagen`] — the §6.3.1 synthetic generator, the Table-3-calibrated
//!   restaurant world, the Hubdub-like multi-answer generator and the
//!   exact §2 motivating example (`corroborate-datagen`);
//! - [`dedup`] — the §6.2.1 listing-deduplication pipeline
//!   (`corroborate-dedup`).
//!
//! ## Quickstart
//!
//! ```
//! use corroborate::prelude::*;
//! use corroborate::algorithms::inc::{IncEstimate, IncEstHeu};
//!
//! // Two bad-quality directories list a closed restaurant; a careful
//! // source flags a sibling listing CLOSED.
//! let mut b = DatasetBuilder::new();
//! let yp = b.add_source("YellowPages");
//! let cs = b.add_source("CitySearch");
//! let mp = b.add_source("MenuPages");
//! let dannys = b.add_fact("Danny's Grand Sea Palace");
//! b.cast(yp, dannys, Vote::True).unwrap();
//! b.cast(cs, dannys, Vote::True).unwrap();
//! let other = b.add_fact("some other stale listing");
//! b.cast(yp, other, Vote::True).unwrap();
//! b.cast(mp, other, Vote::False).unwrap();
//! let ds = b.build().unwrap();
//!
//! let result = IncEstimate::new(IncEstHeu::default()).corroborate(&ds).unwrap();
//! assert_eq!(result.probabilities().len(), 2);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub use corroborate_algorithms as algorithms;
pub use corroborate_core as core;
pub use corroborate_datagen as datagen;
pub use corroborate_dedup as dedup;
pub use corroborate_ml as ml;

/// Convenience re-exports: the core prelude plus the headline algorithm.
pub mod prelude {
    pub use corroborate_algorithms::inc::{IncEstHeu, IncEstPS, IncEstimate};
    pub use corroborate_core::prelude::*;
}
